"""Separating state space vs the brute-force oracle (Section 5.2.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import Graph, cycle_graph, grid_graph
from repro.isomorphism import (
    cycle_pattern,
    iter_witnesses,
    parallel_dp,
    path_pattern,
    sequential_dp,
)
from repro.separating import (
    SeparatingStateSpace,
    is_separating_occurrence,
    iter_separating_occurrences,
)
from repro.treedecomp import make_nice, minfill_decomposition


def run_both(g, pattern, marked, allowed=None):
    td, _ = minfill_decomposition(g)
    nice, _ = make_nice(td)
    space = SeparatingStateSpace(pattern, g, marked, allowed)
    seq = sequential_dp(space, nice)
    par = parallel_dp(space, nice)
    assert par.found == seq.found
    for node in range(nice.num_nodes):
        assert set(par.valid[node]) == set(seq.valid[node])
    return space, nice, seq


class TestOracleHelpers:
    def test_is_separating(self):
        g = grid_graph(3, 3).graph
        marked = np.ones(9, dtype=bool)
        # Removing the middle row {3,4,5} splits top/bottom rows.
        assert is_separating_occurrence(g, marked, {3, 4, 5})
        assert not is_separating_occurrence(g, marked, {0, 1, 2})

    def test_unmarked_components_do_not_count(self):
        g = grid_graph(3, 3).graph
        marked = np.zeros(9, dtype=bool)
        marked[[0, 1, 2]] = True  # only the top row is marked
        assert not is_separating_occurrence(g, marked, {3, 4, 5})


class TestKnownInstances:
    def test_cut_vertex_of_star(self):
        g = Graph(5, [(0, 1), (0, 2), (0, 3), (0, 4)])
        marked = np.ones(5, dtype=bool)
        space, nice, seq = run_both(g, path_pattern(1), marked)
        assert seq.found

    def test_c8_short_patterns_do_not_separate(self):
        g = cycle_graph(8).graph
        marked = np.ones(8, dtype=bool)
        for pattern in (path_pattern(2), path_pattern(3)):
            _, _, seq = run_both(g, pattern, marked)
            assert not seq.found  # removing an arc leaves a path

    def test_opposite_pair_separates_cycle(self):
        # Pattern = two antipodal vertices is disconnected; use a path of 2
        # on an 8-cycle *with chords* so a connected pattern can separate.
        g = cycle_graph(6).graph.with_edges_added([(0, 3)])
        marked = np.ones(6, dtype=bool)
        # Removing the chord's endpoints {0, 3} splits {1,2} from {4,5}.
        _, _, seq = run_both(g, path_pattern(2), marked)
        assert seq.found

    def test_marked_restriction_matters(self):
        g = cycle_graph(6).graph.with_edges_added([(0, 3)])
        marked = np.zeros(6, dtype=bool)
        marked[[1, 2]] = True  # only one side marked: no separation
        _, _, seq = run_both(g, path_pattern(2), marked)
        assert not seq.found

    def test_allowed_mask(self):
        g = cycle_graph(6).graph.with_edges_added([(0, 3)])
        marked = np.ones(6, dtype=bool)
        allowed = np.ones(6, dtype=bool)
        allowed[[0, 3]] = False  # forbid the only separating pair
        _, _, seq = run_both(g, path_pattern(2), marked, allowed)
        assert not seq.found


class TestAgainstOracleRandom:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=4, max_value=9),
        st.integers(min_value=0, max_value=10**6),
        st.sampled_from(["p1", "p2", "p3", "c3"]),
    )
    def test_random_instances(self, n, seed, pname):
        rng = np.random.default_rng(seed)
        edges = []
        for _ in range(2 * n):
            u, v = rng.integers(0, n, size=2)
            if u != v:
                edges.append((int(u), int(v)))
        g = Graph(n, edges)
        marked = rng.random(n) < 0.7
        allowed = rng.random(n) < 0.9
        pattern = {
            "p1": path_pattern(1),
            "p2": path_pattern(2),
            "p3": path_pattern(3),
            "c3": cycle_pattern(3),
        }[pname]
        space, nice, seq = run_both(g, pattern, marked, allowed)
        oracle = {
            tuple(sorted(w.items()))
            for w in iter_separating_occurrences(pattern, g, marked, allowed)
        }
        ours = {
            tuple(sorted(w.items()))
            for w in iter_witnesses(space, nice, seq.valid)
        }
        assert ours == oracle


class TestStateSpaceUnit:
    def test_accepting_needs_both_sides(self):
        g = Graph(2, [(0, 1)])
        marked = np.ones(2, dtype=bool)
        space = SeparatingStateSpace(path_pattern(1), g, marked)
        base_done = (-2,)
        assert space.is_accepting((base_done, (), (), True, True))
        assert not space.is_accepting((base_done, (), (), True, False))
        assert not space.is_accepting((base_done, (), (), False, True))

    def test_side_conflict_blocks_introduction(self):
        # Introducing a vertex adjacent to an inside vertex cannot take the
        # outside.
        g = Graph(2, [(0, 1)])
        marked = np.zeros(2, dtype=bool)
        space = SeparatingStateSpace(path_pattern(1), g, marked)
        s = ((-1,), (0,), (), False, False)  # vertex 0 inside
        succ = list(space.introduce(1, s))
        sides = [
            (inside, outside)
            for (b, inside, outside, ix, ox) in succ
            if b == (-1,)
        ]
        assert ((0, 1), ()) in sides  # joins the inside
        assert all(outside == () for _, outside in sides)

    def test_marked_mask_validated(self):
        g = Graph(2, [(0, 1)])
        with pytest.raises(ValueError):
            SeparatingStateSpace(
                path_pattern(1), g, np.ones(3, dtype=bool)
            )
