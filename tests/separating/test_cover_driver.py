"""Separating cover (Section 5.2.1, Figure 7) and driver (Lemma 5.3)."""

import numpy as np
import pytest

from repro.graphs import cycle_graph, grid_graph, wheel_graph
from repro.isomorphism import cycle_pattern, path_pattern
from repro.planar import embed_geometric
from repro.separating import (
    decide_separating_isomorphism,
    has_separating_occurrence,
    is_separating_occurrence,
    separating_cover,
)


class TestSeparatingCover:
    def test_pieces_valid_and_masked(self):
        gg = grid_graph(6, 6)
        emb, _ = embed_geometric(gg)
        marked = np.ones(gg.graph.n, dtype=bool)
        cover = separating_cover(gg.graph, emb, marked, k=4, d=2, seed=0)
        assert cover.pieces
        for piece in cover.pieces:
            piece.decomposition.validate(piece.graph)
            # Merged vertices: never allowed, originals == -1.
            for v in range(piece.graph.n):
                if piece.originals[v] == -1:
                    assert not piece.allowed[v]
                else:
                    assert piece.allowed[v]

    def test_merged_vertices_inherit_marks(self):
        gg = grid_graph(5, 5)
        emb, _ = embed_geometric(gg)
        marked = np.zeros(gg.graph.n, dtype=bool)
        marked[0] = True  # a single marked corner
        cover = separating_cover(gg.graph, emb, marked, k=3, d=1, seed=1)
        # In pieces whose window excludes vertex 0, some merged vertex must
        # carry the mark.
        for piece in cover.pieces:
            merged_marks = piece.marked[piece.originals == -1]
            originals = set(piece.originals.tolist()) - {-1}
            if 0 not in originals:
                assert merged_marks.any()

    def test_window_subgraph_is_induced(self):
        gg = grid_graph(5, 5)
        emb, _ = embed_geometric(gg)
        marked = np.ones(gg.graph.n, dtype=bool)
        cover = separating_cover(gg.graph, emb, marked, k=3, d=2, seed=2)
        g = gg.graph
        for piece in cover.pieces:
            for a, b in piece.graph.iter_edges():
                oa, ob = int(piece.originals[a]), int(piece.originals[b])
                if oa >= 0 and ob >= 0:
                    assert g.has_edge(oa, ob)

    def test_width_bounded(self):
        gg = grid_graph(8, 8)
        emb, _ = embed_geometric(gg)
        marked = np.ones(gg.graph.n, dtype=bool)
        d = 2
        cover = separating_cover(gg.graph, emb, marked, k=4, d=d, seed=3)
        # Windows plus merged vertices keep O(d) BFS depth (see cover.py).
        assert cover.max_width() <= 3 * (d + 5) + 2

    def test_invalid_args(self):
        gg = grid_graph(3, 3)
        emb, _ = embed_geometric(gg)
        with pytest.raises(ValueError):
            separating_cover(
                gg.graph, emb, np.ones(9, dtype=bool), 0, 1, seed=0
            )
        with pytest.raises(ValueError):
            separating_cover(
                gg.graph, emb, np.ones(4, dtype=bool), 2, 1, seed=0
            )


class TestSeparatingDriver:
    def test_grid_middle_path_separates(self):
        # 3 x n grid: a vertical path of 3 vertices separates left/right.
        gg = grid_graph(3, 7)
        emb, _ = embed_geometric(gg)
        marked = np.ones(gg.graph.n, dtype=bool)
        pattern = path_pattern(3)
        assert has_separating_occurrence(pattern, gg.graph, marked)
        result = decide_separating_isomorphism(
            gg.graph, emb, marked, pattern, seed=0, want_witness=True
        )
        assert result.found
        image = set(result.witness.values())
        assert is_separating_occurrence(gg.graph, marked, image)

    def test_cycle_no_short_separator(self):
        gg = cycle_graph(10)
        emb, _ = embed_geometric(gg)
        marked = np.ones(10, dtype=bool)
        result = decide_separating_isomorphism(
            gg.graph, emb, marked, path_pattern(2), seed=1, rounds=4
        )
        assert not result.found

    def test_wheel_c4_does_not_separate(self):
        # Removing any 4-cycle of a wheel leaves ... check against oracle.
        gg = wheel_graph(8)
        emb, _ = embed_geometric(gg)
        marked = np.ones(gg.graph.n, dtype=bool)
        expect = has_separating_occurrence(
            cycle_pattern(3), gg.graph, marked
        )
        result = decide_separating_isomorphism(
            gg.graph, emb, marked, cycle_pattern(3), seed=2, rounds=4
        )
        assert result.found == expect

    def test_sequential_engine_agrees(self):
        gg = grid_graph(3, 6)
        emb, _ = embed_geometric(gg)
        marked = np.ones(gg.graph.n, dtype=bool)
        a = decide_separating_isomorphism(
            gg.graph, emb, marked, path_pattern(3), seed=3,
            engine="sequential",
        )
        assert a.found

    def test_validation(self):
        gg = grid_graph(3, 3)
        emb, _ = embed_geometric(gg)
        marked = np.ones(9, dtype=bool)
        from repro.graphs import Graph
        from repro.isomorphism import Pattern

        with pytest.raises(ValueError, match="connected"):
            decide_separating_isomorphism(
                gg.graph, emb, marked, Pattern(Graph(2, [])), seed=0
            )
        with pytest.raises(ValueError, match="engine"):
            decide_separating_isomorphism(
                gg.graph, emb, marked, path_pattern(2), seed=0,
                engine="magic",
            )
