"""Separating packed-kernel tests: high-bit codec laws, engine equivalence.

The extended space packs ``(base, inside, outside, ix, ox)`` states as
``base_code | inside_bits << s0 | ix | ox`` (see
``repro.separating.packed``); outside membership is recomputed from the
occupied bag positions, so the codec must round-trip every state whose
side sets partition the free bag vertices — exactly the states the
reference space produces.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import grid_graph, triangulated_grid
from repro.isomorphism import (
    cycle_pattern,
    parallel_dp,
    path_pattern,
    sequential_dp,
    star_pattern,
    triangle,
)
from repro.isomorphism.packed import packed_ops_for
from repro.separating import SeparatingStateSpace
from repro.treedecomp import make_nice, minfill_decomposition


def _sep_ops_and_ctx(bag_vertices, k=3, marked_seed=0):
    g = grid_graph(4, 4).graph
    rng = np.random.default_rng(marked_seed)
    marked = rng.random(g.n) < 0.5
    space = SeparatingStateSpace(path_pattern(k), g, marked)
    ops = space.packed_ops()
    bag = np.asarray(sorted(bag_vertices), dtype=np.int64)
    return ops, ops.ctx(bag)


class TestSeparatingCodec:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_round_trip_identity(self, data):
        bag_size = data.draw(st.integers(min_value=0, max_value=5))
        k = data.draw(st.integers(min_value=2, max_value=4))
        bag_vertices = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=15),
                min_size=bag_size,
                max_size=bag_size,
                unique=True,
            )
        )
        seed = data.draw(st.integers(min_value=0, max_value=10))
        ops, ctx = _sep_ops_and_ctx(bag_vertices, k=k, marked_seed=seed)
        bag = [int(v) for v in ctx.bctx.bag]
        lut = [-1, -2] + bag
        n_states = data.draw(st.integers(min_value=0, max_value=15))
        states = []
        for _ in range(n_states):
            row = data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=bag_size + 1),
                    min_size=k,
                    max_size=k,
                )
            )
            base = tuple(lut[d] for d in row)
            occupied = {j for d in row if d >= 2 for j in [d - 2]}
            free = [j for j in range(bag_size) if j not in occupied]
            side_bits = data.draw(
                st.lists(
                    st.booleans(), min_size=len(free), max_size=len(free)
                )
            )
            inside = tuple(bag[j] for j, b in zip(free, side_bits) if b)
            outside = tuple(bag[j] for j, b in zip(free, side_bits) if not b)
            ix = data.draw(st.booleans())
            ox = data.draw(st.booleans())
            states.append((base, inside, outside, ix, ox))
        codes = ops.encode(ctx, states)
        assert ops.decode(ctx, codes) == states

    def test_codes_cover_valid_tables(self):
        g = triangulated_grid(3, 3).graph
        marked = np.ones(g.n, dtype=bool)
        space = SeparatingStateSpace(triangle(), g, marked)
        td, _ = minfill_decomposition(g)
        nice, _ = make_nice(td)
        ref = sequential_dp(space, nice, engine="reference")
        ops = space.packed_ops()
        for node in range(nice.num_nodes):
            ctx = ops.ctx(nice.bags[node])
            states = list(ref.valid[node])
            codes = ops.encode(ctx, states)
            assert ops.decode(ctx, codes) == states

    def test_high_bits_fit_check(self):
        # A bag too wide for base code + side bits + booleans must be
        # rejected by fits() so the engines fall back to reference.
        g = grid_graph(4, 4).graph
        space = SeparatingStateSpace(
            path_pattern(6), g, np.ones(g.n, dtype=bool)
        )
        ops = space.packed_ops()

        class _FakeNice:
            bags = [np.arange(31, dtype=np.int64)]

        assert not ops.fits(_FakeNice())


TARGETS = [
    ("grid", grid_graph(4, 4).graph),
    ("tri-grid", triangulated_grid(3, 4).graph),
]

PATTERNS = [
    ("triangle", triangle()),
    ("p3", path_pattern(3)),
    ("c4", cycle_pattern(4)),
    ("star3", star_pattern(3)),
]


def _configs(g, seed):
    rng = np.random.default_rng(seed)
    marked = rng.random(g.n) < 0.5
    allowed = rng.random(g.n) < 0.8
    return marked, allowed


@pytest.mark.parametrize("tname,target", TARGETS, ids=[t[0] for t in TARGETS])
@pytest.mark.parametrize("pname,pattern", PATTERNS, ids=[p[0] for p in PATTERNS])
@pytest.mark.parametrize("seed", [0, 1])
class TestSeparatingPackedMatchesReference:
    def test_sequential_tables_costs_identical(
        self, tname, target, pname, pattern, seed
    ):
        marked, allowed = _configs(target, seed)
        td, _ = minfill_decomposition(target)
        nice, _ = make_nice(td)
        space = SeparatingStateSpace(pattern, target, marked, allowed)
        assert packed_ops_for(space, nice) is not None
        ref = sequential_dp(space, nice, engine="reference")
        pkd = sequential_dp(space, nice, engine="packed")
        assert pkd.accepting_count == ref.accepting_count
        assert pkd.found == ref.found
        assert pkd.cost == ref.cost
        for node in range(nice.num_nodes):
            assert dict(pkd.valid[node]) == ref.valid[node], node

    def test_parallel_tables_costs_diagnostics_identical(
        self, tname, target, pname, pattern, seed
    ):
        marked, allowed = _configs(target, seed)
        td, _ = minfill_decomposition(target)
        nice, _ = make_nice(td)
        space = SeparatingStateSpace(pattern, target, marked, allowed)
        ref = parallel_dp(space, nice, engine="reference")
        pkd = parallel_dp(space, nice, engine="packed")
        assert pkd.accepting_count == ref.accepting_count
        assert pkd.cost == ref.cost
        assert (
            pkd.num_layers,
            pkd.num_paths,
            pkd.max_bfs_rounds,
            pkd.total_states,
            pkd.total_shortcuts,
        ) == (
            ref.num_layers,
            ref.num_paths,
            ref.max_bfs_rounds,
            ref.total_states,
            ref.total_shortcuts,
        )
        for node in range(nice.num_nodes):
            assert dict(pkd.valid[node]) == ref.valid[node], node


class TestSeparatingWithClasses:
    def test_host_pattern_classes_equivalence(self):
        # The vertex-connectivity pipeline's class-constrained variant.
        g = grid_graph(4, 4).graph
        marked = np.ones(g.n, dtype=bool)
        host_classes = (np.arange(g.n) % 2).astype(np.int64)
        pattern_classes = [0, None, 1]
        space = SeparatingStateSpace(
            path_pattern(3),
            g,
            marked,
            host_classes=host_classes,
            pattern_classes=pattern_classes,
        )
        td, _ = minfill_decomposition(g)
        nice, _ = make_nice(td)
        ref = sequential_dp(space, nice, engine="reference")
        pkd = sequential_dp(space, nice, engine="packed")
        assert pkd.accepting_count == ref.accepting_count
        assert pkd.cost == ref.cost
        for node in range(nice.num_nodes):
            assert dict(pkd.valid[node]) == ref.valid[node]
