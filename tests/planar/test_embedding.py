"""Tests for the dart-based rotation system: faces, Euler genus, surgery."""

import numpy as np
import pytest

from repro.graphs import (
    cycle_graph,
    delaunay_graph,
    grid_graph,
    path_graph,
    triangulated_grid,
)
from repro.planar import PlanarEmbedding, embed_geometric


def embed(gg):
    emb, _ = embed_geometric(gg)
    return emb


class TestFromRotations:
    def test_triangle(self):
        emb = PlanarEmbedding.from_rotations(3, [[1, 2], [2, 0], [0, 1]])
        emb.check()
        assert emb.num_edges() == 3
        assert emb.euler_genus() == 0
        assert len(emb.faces()) == 2

    def test_single_edge(self):
        emb = PlanarEmbedding.from_rotations(2, [[1], [0]])
        assert emb.num_edges() == 1
        assert len(emb.faces()) == 1  # one face walked twice
        assert emb.euler_genus() == 0

    def test_isolated_vertices(self):
        emb = PlanarEmbedding.from_rotations(3, [[], [], []])
        assert emb.num_edges() == 0
        assert emb.euler_genus() == 0

    def test_unmatched_rotation_rejected(self):
        with pytest.raises(ValueError):
            PlanarEmbedding.from_rotations(2, [[1], []])

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            PlanarEmbedding.from_rotations(1, [[0]])

    def test_k4_planar_rotation(self):
        # K4 with an explicitly planar rotation system.
        emb = PlanarEmbedding.from_rotations(
            4, [[1, 2, 3], [2, 0, 3], [0, 1, 3], [0, 2, 1]]
        )
        assert emb.euler_genus() == 0
        assert len(emb.faces()) == 4

    def test_k4_toroidal_rotation(self):
        # A different rotation of K4 that is NOT genus 0.
        emb = PlanarEmbedding.from_rotations(
            4, [[1, 2, 3], [0, 2, 3], [0, 1, 3], [0, 1, 2]]
        )
        assert emb.euler_genus() != 0


class TestGeometricEmbeddings:
    @pytest.mark.parametrize(
        "gg",
        [
            grid_graph(4, 5),
            triangulated_grid(4, 4),
            cycle_graph(9),
            path_graph(7),
            delaunay_graph(60, seed=5),
        ],
        ids=["grid", "tri-grid", "cycle", "path", "delaunay"],
    )
    def test_genus_zero(self, gg):
        emb = embed(gg)
        emb.check()
        assert emb.euler_genus() == 0

    def test_euler_formula_grid(self):
        emb = embed(grid_graph(3, 3))
        # V=9, E=12 -> F = 2 - 9 + 12 = 5 (4 squares + outer).
        assert len(emb.faces()) == 5

    def test_face_walks_partition_darts(self):
        emb = embed(delaunay_graph(40, seed=1))
        walks = emb.faces()
        all_darts = [d for w in walks for d in w]
        assert len(all_darts) == 2 * emb.num_edges()
        assert len(set(all_darts)) == len(all_darts)

    def test_face_vertices(self):
        emb = embed(cycle_graph(5))
        faces = emb.faces()
        assert len(faces) == 2
        for walk in faces:
            assert sorted(emb.face_vertices(walk)) == [0, 1, 2, 3, 4]

    def test_rotation_roundtrip(self):
        gg = grid_graph(3, 4)
        emb = embed(gg)
        for v in range(gg.graph.n):
            assert sorted(emb.rotation(v)) == gg.graph.neighbors(v).tolist()

    def test_to_graph_roundtrip(self):
        gg = delaunay_graph(50, seed=2)
        emb = embed(gg)
        assert emb.to_graph() == gg.graph

    def test_positions_shape_validated(self):
        from repro.graphs import GeometricGraph

        bad = GeometricGraph(grid_graph(2, 2).graph, np.zeros((3, 2)))
        with pytest.raises(ValueError):
            embed_geometric(bad)


class TestSurgery:
    def test_delete_edge(self):
        emb = embed(cycle_graph(4))
        emb.delete_edge(0)
        emb.check()
        assert emb.num_edges() == 3
        assert emb.euler_genus() == 0
        assert len(emb.faces()) == 1

    def test_add_edge_in_face(self):
        emb = embed(cycle_graph(4))
        # Add a chord between opposite vertices of the square, inside one
        # face: find darts bounding the same face with tails 0 and 2.
        face = next(w for w in emb.faces() if len(w) == 4)
        d0 = next(d for d in face if emb.tail(d) == 0)
        d2 = next(d for d in face if emb.tail(d) == 2)
        emb.add_edge_in_face(d0, d2)
        emb.check()
        assert emb.num_edges() == 5
        assert emb.euler_genus() == 0
        assert len(emb.faces()) == 3

    def test_contract_edge_triangle(self):
        emb = embed(cycle_graph(3))
        emb.contract_edge(0)
        emb.check()
        # Triangle contracts to two parallel edges (kept as a multigraph);
        # the simple view collapses them.
        assert emb.num_edges() == 2
        assert emb.euler_genus() == 0
        assert emb.to_graph().m == 1

    def test_contract_grid_row(self):
        gg = grid_graph(3, 3)
        emb = embed(gg)
        # Contract the top-row path 0-1, then 0-2 (which 1's merge created).
        d01 = next(
            d
            for d in emb.darts_from(0)
            if emb.head[d] == 1
        )
        emb.contract_edge(d01)
        emb.check()
        assert emb.euler_genus() == 0
        g = emb.to_graph()
        # Vertex 1 absorbed into 0: 0 now adjacent to 2 and 4.
        assert g.has_edge(0, 2) and g.has_edge(0, 4)
        assert emb.degree(1) == 0

    def test_contract_keeps_planarity_random(self):
        gg = delaunay_graph(30, seed=3)
        emb = embed(gg)
        rng = np.random.default_rng(0)
        for _ in range(10):
            live = [
                d
                for d in range(0, len(emb.head), 2)
                if emb.alive[d] and emb.head[d] != emb.head[d ^ 1]
            ]
            if not live:
                break
            emb.contract_edge(int(rng.choice(live)))
            emb.check()
            assert emb.euler_genus() == 0

    def test_add_vertex(self):
        emb = embed(cycle_graph(3))
        v = emb.add_vertex()
        assert v == 3 and emb.degree(v) == 0
        assert emb.euler_genus() == 0

    def test_induced_subembedding(self):
        gg = grid_graph(4, 4)
        emb = embed(gg)
        sub, originals = emb.induced_subembedding(range(8))
        sub.check()
        assert sub.euler_genus() == 0
        expect, _ = gg.graph.induced_subgraph(range(8))
        assert sub.to_graph() == expect
        assert originals.tolist() == list(range(8))

    def test_copy_independent(self):
        emb = embed(cycle_graph(4))
        cp = emb.copy()
        cp.delete_edge(0)
        assert emb.num_edges() == 4 and cp.num_edges() == 3
