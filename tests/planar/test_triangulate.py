"""Stellation tests: every face becomes a triangle, planarity preserved."""

import pytest

from repro.graphs import (
    cycle_graph,
    delaunay_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.planar import embed_geometric, stellate


def embed(gg):
    emb, _ = embed_geometric(gg)
    return emb


def all_faces_triangles(emb):
    return all(len(w) == 3 for w in emb.faces())


class TestStellate:
    @pytest.mark.parametrize(
        "gg",
        [
            grid_graph(4, 4),
            cycle_graph(7),
            path_graph(5),  # tree: one non-simple face walk
            star_graph(6),  # tree with a high-degree center
            delaunay_graph(50, seed=8),
        ],
        ids=["grid", "cycle", "path", "star", "delaunay"],
    )
    def test_triangulates_and_stays_planar(self, gg):
        emb = embed(gg)
        result, _ = stellate(emb)
        t = result.embedding
        t.check()
        assert t.euler_genus() == 0
        assert all_faces_triangles(t)

    def test_face_vertex_count(self):
        emb = embed(grid_graph(3, 3))
        nfaces = len(emb.faces())
        result, _ = stellate(emb)
        assert result.embedding.n == emb.n + nfaces
        assert result.num_original == emb.n
        assert result.face_of_vertex.shape == (nfaces,)

    def test_original_untouched(self):
        emb = embed(cycle_graph(5))
        result, _ = stellate(emb)
        # The original edges are still present.
        g = result.embedding.to_graph()
        for u, v in cycle_graph(5).graph.iter_edges():
            assert g.has_edge(u, v)

    def test_center_joined_to_every_corner(self):
        emb = embed(cycle_graph(4))
        result, _ = stellate(emb)
        g = result.embedding.to_graph()
        for center in (4, 5):
            for v in range(4):
                assert g.has_edge(center, v)

    def test_tree_stellation_multiedges(self):
        # Path a-b-c: single face walk of length 4 visiting b twice; the
        # center gets a double edge to b in the multigraph.
        emb = embed(path_graph(3))
        result, _ = stellate(emb)
        t = result.embedding
        assert t.euler_genus() == 0
        assert all_faces_triangles(t)
        center = 3
        assert t.degree(center) == 4  # a, b, b, c
        assert sorted(t.rotation(center)) == [0, 1, 1, 2]

    def test_cost_linear(self):
        emb = embed(delaunay_graph(200, seed=4))
        _, cost = stellate(emb)
        darts = 2 * emb.num_edges()
        assert cost.work <= 4 * (darts + emb.n)
        assert cost.depth <= 12

    def test_is_face_vertex(self):
        emb = embed(cycle_graph(3))
        result, _ = stellate(emb)
        assert not result.is_face_vertex(2)
        assert result.is_face_vertex(3)
