"""Geometric embedding details: charged cost, validation toggles."""

import numpy as np
import pytest

from repro.graphs import GeometricGraph, Graph, grid_graph
from repro.planar import embed_geometric, embedding_cost


class TestEmbeddingCost:
    def test_shape(self):
        small = embedding_cost(100)
        large = embedding_cost(10_000)
        # O(n) work, O(log^2 n) depth.
        assert large.work / small.work == pytest.approx(100, rel=0.05)
        assert large.depth <= 4 * small.depth

    def test_tiny(self):
        c = embedding_cost(0)
        assert c.work >= 1 and c.depth >= 1


class TestValidation:
    def crossing_drawing(self):
        # K4 drawn with a crossing: positions on a square with both
        # diagonals drawn straight.
        g = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (1, 3)])
        pos = np.array([[0.0, 0], [1, 0], [1, 1], [0, 1]])
        return GeometricGraph(g, pos)

    def test_crossing_rejected(self):
        with pytest.raises(ValueError, match="not planar"):
            embed_geometric(self.crossing_drawing())

    def test_validation_can_be_skipped(self):
        emb, _ = embed_geometric(self.crossing_drawing(), validate=False)
        assert emb.euler_genus() != 0  # garbage in, genus out

    def test_cost_returned(self):
        gg = grid_graph(4, 4)
        _, cost = embed_geometric(gg)
        assert cost == embedding_cost(16)
