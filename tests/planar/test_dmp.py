"""DMP planarity test / embedder vs the networkx oracle."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    Graph,
    antiprism_graph,
    complete_graph,
    cycle_graph,
    delaunay_graph,
    grid_graph,
    icosahedron_graph,
    outerplanar_graph,
    path_graph,
    random_tree,
    star_graph,
    torus_grid,
    triangulated_grid,
    wheel_graph,
)
from repro.planar import PlanarityError, embed_planar, try_embed_planar


def to_nx(g):
    h = nx.Graph()
    h.add_nodes_from(range(g.n))
    h.add_edges_from(g.iter_edges())
    return h


PLANAR = [
    path_graph(8).graph,
    cycle_graph(9).graph,
    star_graph(7).graph,
    wheel_graph(8).graph,
    grid_graph(4, 5).graph,
    triangulated_grid(4, 4).graph,
    delaunay_graph(40, seed=3).graph,
    antiprism_graph(6).graph,
    icosahedron_graph().graph,
    outerplanar_graph(12, seed=1).graph,
    complete_graph(4),
    random_tree(25, seed=2),
    Graph.empty(5),
    Graph.empty(0),
    Graph(1, []),
]

NONPLANAR = [
    complete_graph(5),
    complete_graph(6),
    torus_grid(3, 3),
    # K33
    Graph(6, [(i, j) for i in range(3) for j in range(3, 6)]),
]


class TestPlanarInputs:
    @pytest.mark.parametrize("g", PLANAR, ids=lambda g: f"n{g.n}m{g.m}")
    def test_embeds_with_genus_zero(self, g):
        emb = embed_planar(g)
        emb.check()
        assert emb.euler_genus() == 0
        assert emb.to_graph() == g

    def test_k4_face_count(self):
        emb = embed_planar(complete_graph(4))
        assert len(emb.faces()) == 4

    def test_icosahedron_face_count(self):
        emb = embed_planar(icosahedron_graph().graph)
        assert len(emb.faces()) == 20
        assert all(len(w) == 3 for w in emb.faces())


class TestNonPlanarInputs:
    @pytest.mark.parametrize("g", NONPLANAR, ids=lambda g: f"n{g.n}m{g.m}")
    def test_rejected(self, g):
        assert try_embed_planar(g) is None
        with pytest.raises(PlanarityError):
            embed_planar(g)


class TestAgainstOracle:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=1, max_value=18),
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_matches_networkx_verdict(self, n, m, seed):
        rng = np.random.default_rng(seed)
        edges = set()
        for _ in range(m):
            u, v = rng.integers(0, n, size=2)
            if u != v:
                edges.add((min(int(u), int(v)), max(int(u), int(v))))
        g = Graph(n, list(edges))
        ours = try_embed_planar(g)
        theirs, _ = nx.check_planarity(to_nx(g))
        assert (ours is not None) == theirs
        if ours is not None:
            ours.check()
            assert ours.euler_genus() == 0
            assert ours.to_graph() == g

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_random_planar_subgraphs(self, seed):
        # Take a Delaunay triangulation and delete random edges: always
        # planar, often disconnected with cut vertices — stresses the
        # biconnected gluing.
        rng = np.random.default_rng(seed)
        g = delaunay_graph(25, seed=seed % 100).graph
        keep = rng.random(g.m) < 0.6
        g2 = Graph(g.n, g.edges()[keep])
        emb = embed_planar(g2)
        emb.check()
        assert emb.euler_genus() == 0
        assert emb.to_graph() == g2
