"""Tests for the bipartite face--vertex graph G' (Section 5.1, Figure 6)."""

import networkx as nx

from repro.graphs import (
    antiprism_graph,
    cycle_graph,
    delaunay_graph,
    grid_graph,
    wheel_graph,
)
from repro.planar import build_face_vertex_graph, embed_geometric


def build(gg):
    emb, _ = embed_geometric(gg)
    fv, _ = build_face_vertex_graph(emb)
    return fv


class TestFaceVertexGraph:
    def test_cycle(self):
        # C_n: 2 faces; G' has n + 2 vertices, each face joined to all n.
        fv = build(cycle_graph(5))
        assert fv.num_original == 5
        assert fv.graph.n == 7
        assert fv.graph.m == 10
        for f in (5, 6):
            assert fv.graph.degree(f) == 5

    def test_bipartite(self):
        fv = build(delaunay_graph(40, seed=6))
        for u, v in fv.graph.iter_edges():
            assert fv.is_original(u) != fv.is_original(v)

    def test_no_original_edges_remain(self):
        gg = grid_graph(4, 4)
        fv = build(gg)
        for u, v in gg.graph.iter_edges():
            assert not fv.graph.has_edge(u, v)

    def test_face_degrees_match_face_sizes(self):
        gg = grid_graph(3, 3)
        emb, _ = embed_geometric(gg)
        sizes = sorted(len(w) for w in emb.faces())
        fv = build(gg)
        fdegs = sorted(
            fv.graph.degree(v) for v in range(fv.num_original, fv.graph.n)
        )
        assert fdegs == sizes

    def test_embedding_planar(self):
        fv = build(delaunay_graph(60, seed=7))
        fv.embedding.check()
        assert fv.embedding.euler_genus() == 0

    def test_embedding_matches_graph(self):
        fv = build(antiprism_graph(5))
        assert fv.embedding.to_graph() == fv.graph

    def test_original_vertices_property(self):
        fv = build(cycle_graph(4))
        assert fv.original_vertices.tolist() == [0, 1, 2, 3]

    def test_euler_count(self):
        # A planar graph with F faces: G' has n + F vertices and
        # sum(face sizes) = 2m edges.
        gg = wheel_graph(6)
        emb, _ = embed_geometric(gg)
        f = len(emb.faces())
        fv = build(gg)
        assert fv.graph.n == gg.graph.n + f
        assert fv.graph.m == 2 * gg.graph.m

    def test_wheel_cycles_even(self):
        fv = build(wheel_graph(5))
        h = nx.Graph(list(fv.graph.iter_edges()))
        assert nx.is_bipartite(h)
