"""Tests for contracting connected vertex sets within an embedding."""

import numpy as np
import pytest

from repro.graphs import cycle_graph, delaunay_graph, grid_graph
from repro.planar import contract_vertex_sets, embed_geometric, relabel_embedding


def embed(gg):
    emb, _ = embed_geometric(gg)
    return emb


class TestContractVertexSets:
    def test_contract_grid_row(self):
        gg = grid_graph(3, 3)
        emb = embed(gg)
        out, rep, _ = contract_vertex_sets(emb, [[0, 1, 2]])
        out.check()
        assert out.euler_genus() == 0
        assert rep[0] == rep[1] == rep[2] == 0
        g = out.to_graph()
        # The merged top row is adjacent to the whole middle row.
        for v in (3, 4, 5):
            assert g.has_edge(0, v)
        assert out.degree(1) == 0 and out.degree(2) == 0

    def test_multiple_groups(self):
        gg = grid_graph(2, 4)
        emb = embed(gg)
        out, rep, _ = contract_vertex_sets(emb, [[0, 1], [6, 7]])
        out.check()
        assert out.euler_genus() == 0
        assert rep[1] == 0 and rep[7] == 6

    def test_disconnected_group_rejected(self):
        emb = embed(grid_graph(2, 4))
        with pytest.raises(ValueError):
            contract_vertex_sets(emb, [[0, 7]])

    def test_singleton_and_empty_groups_noop(self):
        emb = embed(cycle_graph(4))
        out, rep, _ = contract_vertex_sets(emb, [[2], []])
        assert out.num_edges() == 4
        assert np.array_equal(rep, np.arange(4))

    def test_original_embedding_untouched(self):
        emb = embed(cycle_graph(5))
        before = emb.num_edges()
        contract_vertex_sets(emb, [[0, 1, 2]])
        assert emb.num_edges() == before

    def test_contract_whole_graph(self):
        emb = embed(grid_graph(3, 3))
        out, rep, _ = contract_vertex_sets(emb, [list(range(9))])
        assert out.num_edges() == 0
        assert np.all(rep == 0)

    def test_planarity_preserved_on_delaunay(self):
        gg = delaunay_graph(60, seed=11)
        emb = embed(gg)
        # Contract a BFS ball around vertex 0.
        from repro.graphs import parallel_bfs

        res, _ = parallel_bfs(gg.graph, [0])
        ball = np.flatnonzero((res.level >= 0) & (res.level <= 2))
        out, rep, _ = contract_vertex_sets(emb, [ball.tolist()])
        out.check()
        assert out.euler_genus() == 0
        # Quotient graph sanity: matches Graph.quotient.
        labels = rep.copy()
        expect, _ = gg.graph.quotient(labels)
        got = out.to_graph()
        # Map: representative ids vs quotient compact ids — compare degrees
        # of the merged vertex instead of edge sets.
        assert expect.m == sum(
            got.degree(v) for v in range(got.n)
        ) // 2
        merged = int(rep[ball[0]])
        uniq_neighbors = set(got.neighbors(merged).tolist())
        assert len(uniq_neighbors) > 0


class TestRelabel:
    def test_relabel_after_contraction(self):
        emb = embed(grid_graph(3, 3))
        out, rep, _ = contract_vertex_sets(emb, [[0, 1, 2]])
        keep = sorted(set(int(r) for r in rep))
        small, originals = relabel_embedding(out, keep)
        small.check()
        assert small.n == 7
        assert small.euler_genus() == 0
        assert originals.tolist() == keep

    def test_relabel_rejects_live_dropped_vertex(self):
        emb = embed(cycle_graph(4))
        with pytest.raises(ValueError):
            relabel_embedding(emb, [0, 1, 2])

    def test_relabel_preserves_multigraph(self):
        emb = embed(cycle_graph(3))
        emb.contract_edge(0)
        live = [v for v in range(3) if emb.degree(v) > 0]
        small, _ = relabel_embedding(emb, live)
        assert small.n == 2
        assert small.num_edges() == 2  # parallel pair preserved
        assert small.euler_genus() == 0
