"""Minimum vertex cut enumeration vs brute force."""

from itertools import combinations


from repro.connectivity import minimum_vertex_cuts
from repro.graphs import (
    Graph,
    connected_components,
    cycle_graph,
    grid_graph,
    ladder_graph,
    path_graph,
    star_graph,
)
from repro.planar import embed_geometric, embed_planar


def brute_force_min_cuts(g):
    """All minimum vertex cuts by subset enumeration (tiny graphs)."""
    _, count, _ = connected_components(g)
    if count > 1:
        return 0, set()
    for size in range(1, g.n - 1):
        cuts = set()
        for cut in combinations(range(g.n), size):
            rest = [v for v in range(g.n) if v not in cut]
            sub, _ = g.induced_subgraph(rest)
            _, comps, _ = connected_components(sub)
            if comps > 1:
                cuts.add(frozenset(cut))
        if cuts:
            return size, cuts
    return g.n - 1, set()


def enumerate_cuts(gg_or_graph, seed=0, **kw):
    if hasattr(gg_or_graph, "graph"):
        g = gg_or_graph.graph
        emb, _ = embed_geometric(gg_or_graph)
    else:
        g = gg_or_graph
        emb = embed_planar(g)
    return g, minimum_vertex_cuts(g, emb, seed=seed, **kw)


class TestEnumeration:
    def test_cycle_cuts_are_nonadjacent_pairs(self):
        g, result = enumerate_cuts(cycle_graph(7))
        kappa, expect = brute_force_min_cuts(g)
        assert result.connectivity == kappa == 2
        assert result.cuts == expect
        assert len(expect) == 7 * 4 // 2  # non-adjacent pairs of C7

    def test_ladder(self):
        g, result = enumerate_cuts(ladder_graph(4))
        kappa, expect = brute_force_min_cuts(g)
        assert result.connectivity == kappa == 2
        assert result.cuts == expect

    def test_small_grid(self):
        g, result = enumerate_cuts(grid_graph(3, 3))
        kappa, expect = brute_force_min_cuts(g)
        assert result.connectivity == kappa == 2
        assert result.cuts == expect

    def test_every_reported_cut_disconnects(self):
        g, result = enumerate_cuts(grid_graph(3, 4))
        for cut in result.cuts:
            rest = [v for v in range(g.n) if v not in cut]
            sub, _ = g.induced_subgraph(rest)
            _, comps, _ = connected_components(sub)
            assert comps > 1
            assert len(cut) == result.connectivity


class TestTrivialCases:
    def test_articulation_points_for_kappa1(self):
        g, result = enumerate_cuts(path_graph(5))
        assert result.connectivity == 1
        assert result.cuts == {frozenset([1]), frozenset([2]),
                               frozenset([3])}

    def test_star_center(self):
        g, result = enumerate_cuts(star_graph(4))
        assert result.connectivity == 1
        assert result.cuts == {frozenset([0])}

    def test_disconnected(self):
        g = Graph(4, [(0, 1), (2, 3)])
        emb = embed_planar(g)
        result = minimum_vertex_cuts(g, emb)
        assert result.connectivity == 0 and result.cuts == set()
