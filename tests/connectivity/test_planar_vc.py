"""Lemma 5.2 end-to-end tests: planar vertex connectivity.

The paper's headline application: kappa in {1..5} decided via separating
2c-cycles in the face--vertex graph.  Instances are kept small — the DP
constant for the 8-cycle searches is the paper's k^O(k); scaling is the E9
benchmark's job.
"""

import pytest

from repro.connectivity import (
    planar_vertex_connectivity,
    vertex_connectivity_flow,
)
from repro.graphs import (
    Graph,
    antiprism_graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    ladder_graph,
    path_graph,
    star_graph,
    wheel_graph,
)
from repro.planar import embed_geometric, embed_planar


def vc(gg_or_graph, rounds=2, seed=0, **kw):
    if hasattr(gg_or_graph, "graph"):
        g = gg_or_graph.graph
        emb, _ = embed_geometric(gg_or_graph)
    else:
        g = gg_or_graph
        emb = embed_planar(g)
    return planar_vertex_connectivity(g, emb, seed=seed, rounds=rounds, **kw)


class TestLowConnectivity:
    def test_disconnected(self):
        g = Graph(6, [(0, 1), (2, 3), (4, 5)])
        assert vc(g).connectivity == 0

    def test_tree(self):
        assert vc(path_graph(8)).connectivity == 1

    def test_star(self):
        assert vc(star_graph(7)).connectivity == 1

    def test_cycle(self):
        assert vc(cycle_graph(9)).connectivity == 2

    def test_ladder(self):
        assert vc(ladder_graph(5)).connectivity == 2

    def test_grid(self):
        assert vc(grid_graph(3, 4)).connectivity == 2


class TestTinyGraphFallback:
    @pytest.mark.parametrize(
        "g,expect",
        [
            (complete_graph(1), 0),
            (complete_graph(2), 1),
            (complete_graph(3), 2),
            (complete_graph(4), 3),
            (cycle_graph(4).graph, 2),
            (cycle_graph(5).graph, 2),
            (path_graph(2).graph, 1),
        ],
        ids=["k1", "k2", "k3", "k4", "c4", "c5", "p2"],
    )
    def test_small_graphs_exact(self, g, expect):
        # Lemma 5.1 does not apply below 6 vertices (no separator may
        # exist); the driver falls back to the exact flow baseline.
        assert vc(g).connectivity == expect


class TestHighConnectivity:
    def test_wheel_is_three_connected(self):
        result = vc(wheel_graph(7), seed=3)
        assert result.connectivity == 3

    @pytest.mark.slow
    def test_octahedron_is_four_connected(self):
        result = vc(antiprism_graph(3), rounds=1, seed=1)
        assert result.connectivity == 4

    def test_matches_flow_baseline(self):
        for gg in (cycle_graph(8), wheel_graph(6), grid_graph(3, 3)):
            ours = vc(gg, seed=5).connectivity
            flow = vertex_connectivity_flow(gg.graph)
            assert ours == flow


class TestCertificate:
    def test_cut_certificate_is_verified(self):
        gg = grid_graph(3, 5)
        g = gg.graph
        emb, _ = embed_geometric(gg)
        result = planar_vertex_connectivity(
            g, emb, seed=2, rounds=3, want_certificate=True
        )
        assert result.connectivity == 2
        cut = result.certificate_cut
        assert cut is not None and len(cut) == 2
        rest = [v for v in range(g.n) if v not in cut]
        sub, _ = g.induced_subgraph(rest)
        from repro.graphs import connected_components

        _, count, _ = connected_components(sub)
        assert count >= 2

    def test_certificate_on_cycle_graph(self):
        # The C7 subtlety: naive extraction can yield adjacent pairs that
        # do NOT cut the cycle; the verified certificate never does.
        gg = cycle_graph(7)
        g = gg.graph
        emb, _ = embed_geometric(gg)
        result = planar_vertex_connectivity(
            g, emb, seed=0, rounds=3, want_certificate=True
        )
        assert result.connectivity == 2
        cut = result.certificate_cut
        assert cut is not None
        u, v = sorted(cut)
        assert not g.has_edge(u, v)  # adjacent pairs cannot cut a cycle

    def test_articulation_certificate(self):
        gg = star_graph(5)
        emb, _ = embed_geometric(gg)
        result = planar_vertex_connectivity(
            gg.graph, emb, seed=1, rounds=2, want_certificate=True
        )
        assert result.connectivity == 1
        assert result.certificate_cut == frozenset([0])


class TestMonteCarlo:
    def test_stable_across_seeds(self):
        gg = wheel_graph(6)
        results = {vc(gg, seed=s).connectivity for s in range(5)}
        assert results == {3}
