"""Flow-based vertex connectivity baseline vs networkx and brute force."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.connectivity import (
    local_connectivity,
    vertex_connectivity_bruteforce,
    vertex_connectivity_flow,
)
from repro.graphs import (
    Graph,
    antiprism_graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    icosahedron_graph,
    path_graph,
    star_graph,
    wheel_graph,
)


def to_nx(g):
    h = nx.Graph()
    h.add_nodes_from(range(g.n))
    h.add_edges_from(g.iter_edges())
    return h


KNOWN = [
    (path_graph(6).graph, 1),
    (star_graph(5).graph, 1),
    (cycle_graph(7).graph, 2),
    (grid_graph(4, 5).graph, 2),
    (wheel_graph(7).graph, 3),
    (antiprism_graph(5).graph, 4),
    (icosahedron_graph().graph, 5),
    (complete_graph(4), 3),
    (complete_graph(2), 1),
    (Graph(1, []), 0),
    (Graph(4, [(0, 1), (2, 3)]), 0),
]


class TestFlowVC:
    @pytest.mark.parametrize("g,expect", KNOWN, ids=[f"k{e}n{g.n}" for g, e in KNOWN])
    def test_known_families(self, g, expect):
        assert vertex_connectivity_flow(g) == expect

    @pytest.mark.parametrize("g,expect", [c for c in KNOWN if c[0].n <= 10])
    def test_bruteforce_agrees(self, g, expect):
        assert vertex_connectivity_bruteforce(g) == expect

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=2, max_value=12),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_matches_networkx(self, n, seed):
        rng = np.random.default_rng(seed)
        edges = []
        for _ in range(3 * n):
            u, v = rng.integers(0, n, size=2)
            if u != v:
                edges.append((int(u), int(v)))
        g = Graph(n, edges)
        assert vertex_connectivity_flow(g) == nx.node_connectivity(to_nx(g))

    def test_local_connectivity(self):
        g = grid_graph(3, 3).graph
        # Corners 0 and 8: two vertex-disjoint paths.
        assert local_connectivity(g, 0, 8) == 2
        assert local_connectivity(g, 0, 8) == nx.node_connectivity(
            to_nx(g), 0, 8
        )

    def test_local_connectivity_validation(self):
        g = path_graph(3).graph
        with pytest.raises(ValueError):
            local_connectivity(g, 0, 1)  # adjacent
        with pytest.raises(ValueError):
            local_connectivity(g, 1, 1)
