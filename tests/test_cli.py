"""CLI tests: spec parsing and the command entry points."""

import json
from pathlib import Path

import pytest

from repro.cli import main, parse_pattern, parse_target
from repro.pram import span_from_dict


class TestParseTarget:
    @pytest.mark.parametrize(
        "spec,n",
        [
            ("grid:3x4", 12),
            ("trigrid:3x3", 9),
            ("delaunay:30:5", 30),
            ("cycle:7", 7),
            ("path:5", 5),
            ("wheel:6", 7),
            ("antiprism:4", 8),
            ("icosahedron", 12),
            ("tree:9:1", 9),
            ("outerplanar:8:2", 8),
        ],
    )
    def test_families(self, spec, n):
        graph, emb = parse_target(spec)
        assert graph.n == n
        assert emb.euler_genus() == 0

    def test_bad_specs(self):
        with pytest.raises(SystemExit):
            parse_target("moebius:5")
        with pytest.raises(SystemExit):
            parse_target("grid:oops")
        with pytest.raises(SystemExit):
            parse_target("delaunay:")


class TestParsePattern:
    @pytest.mark.parametrize(
        "spec,k",
        [
            ("triangle", 3),
            ("path:4", 4),
            ("cycle:6", 6),
            ("star:3", 4),
            ("clique:4", 4),
            ("diamond", 4),
        ],
    )
    def test_families(self, spec, k):
        assert parse_pattern(spec).k == k

    def test_bad_specs(self):
        with pytest.raises(SystemExit):
            parse_pattern("hypercube:3")
        with pytest.raises(SystemExit):
            parse_pattern("cycle:x")


class TestCommands:
    def test_decide(self, capsys):
        assert main(
            ["decide", "--target", "trigrid:5x5", "--pattern", "triangle"]
        ) == 0
        out = capsys.readouterr().out
        assert "found: True" in out
        assert "witness" in out

    def test_decide_negative(self, capsys):
        assert main(
            ["decide", "--target", "grid:5x5", "--pattern", "triangle",
             "--rounds", "2"]
        ) == 0
        assert "found: False" in capsys.readouterr().out

    def test_count_exact(self, capsys):
        assert main(
            ["count", "--target", "grid:4x4", "--pattern", "cycle:4",
             "--exact"]
        ) == 0
        out = capsys.readouterr().out
        assert "isomorphisms (exact, deterministic): 72" in out  # 9 * 8

    def test_list(self, capsys):
        assert main(
            ["list", "--target", "grid:4x4", "--pattern", "cycle:4"]
        ) == 0
        out = capsys.readouterr().out
        assert "occurrences: 9" in out

    def test_vc(self, capsys):
        assert main(
            ["vc", "--target", "wheel:6", "--rounds", "2"]
        ) == 0
        assert "vertex connectivity: 3" in capsys.readouterr().out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestPlanFlags:
    def test_decide_plan_auto_explain(self, capsys):
        assert main(
            ["decide", "--target", "grid:8x8", "--pattern", "cycle:4",
             "--rounds", "2", "--plan", "auto", "--explain"]
        ) == 0
        out = capsys.readouterr().out
        assert "found: True" in out
        assert "plan: mode=witness" in out
        assert "predicted cost" in out
        assert "actual cost" in out

    def test_explain_without_plan_notes_absence(self, capsys):
        assert main(
            ["decide", "--target", "grid:5x5", "--pattern", "cycle:4",
             "--rounds", "1", "--explain"]
        ) == 0
        assert "no plan recorded" in capsys.readouterr().out

    def test_explicit_engine_overrides_auto_plan(self, capsys):
        assert main(
            ["decide", "--target", "grid:6x6", "--pattern", "cycle:4",
             "--rounds", "1", "--plan", "auto", "--engine", "parallel",
             "--explain"]
        ) == 0
        # The plan records its own choice, but the run is still correct
        # and the explain block renders.
        assert "plan: mode=" in capsys.readouterr().out

    def test_batch_plan_auto_shares(self, capsys):
        assert main(
            ["batch", "--target", "grid:6x6",
             "--patterns", "cycle:4,path:4,cycle:6,cycle:4",
             "--rounds", "3", "--plan", "auto", "--explain"]
        ) == 0
        out = capsys.readouterr().out
        assert "[shared-subpattern plan]" in out
        assert "deduped: 1" in out
        assert "shared-subpattern batch" in out

    def test_batch_dedup_reported(self, capsys):
        assert main(
            ["batch", "--target", "grid:5x5",
             "--patterns", "cycle:4,cycle:4,path:4"]
        ) == 0
        assert "deduped: 1" in capsys.readouterr().out

    def test_vc_plan_auto(self, capsys):
        assert main(
            ["vc", "--target", "wheel:6", "--rounds", "1",
             "--plan", "auto", "--explain"]
        ) == 0
        out = capsys.readouterr().out
        assert "vertex connectivity: 3" in out
        assert "plan: mode=vc" in out


class TestTraceFlags:
    def test_decide_trace_table(self, capsys):
        assert main(
            ["decide", "--target", "trigrid:5x5", "--pattern", "triangle",
             "--trace"]
        ) == 0
        out = capsys.readouterr().out
        # The table header plus the pipeline's phases.
        assert "phase" in out and "share" in out
        for phase in ("decide-si", "cover", "clustering", "dp-solve"):
            assert phase in out

    def test_decide_trace_json(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        assert main(
            ["decide", "--target", "trigrid:5x5", "--pattern", "triangle",
             "--trace-json", str(path)]
        ) == 0
        out = capsys.readouterr().out
        with open(path) as fh:
            data = json.load(fh)
        span = span_from_dict(data)
        # The printed flat totals and the tree's root must agree.
        assert f"work={span.work:,} depth={span.depth:,}" in out
        assert span.cost == span.folded()
        names = {s.name for s in span.walk()}
        assert {"clustering", "cover", "dp-solve"} <= names

    def test_vc_trace(self, capsys):
        assert main(
            ["vc", "--target", "wheel:6", "--rounds", "2", "--trace"]
        ) == 0
        out = capsys.readouterr().out
        assert "planar-vc" in out and "cycle-search" in out

    def test_list_trace(self, capsys):
        assert main(
            ["list", "--target", "grid:4x4", "--pattern", "cycle:4",
             "--trace"]
        ) == 0
        out = capsys.readouterr().out
        assert "list-occurrences" in out and "dp-solve" in out

    def test_count_exact_trace(self, capsys):
        assert main(
            ["count", "--target", "grid:4x4", "--pattern", "cycle:4",
             "--exact", "--trace"]
        ) == 0
        assert "window-count" in capsys.readouterr().out


class TestProfileCommand:
    def test_profile_prints_schedule_table(self, capsys):
        assert main(
            ["profile", "--target", "trigrid:5x5", "--pattern", "triangle",
             "--rounds", "1", "--processors", "1,4,16"]
        ) == 0
        out = capsys.readouterr().out
        assert "T_P (sim)" in out
        assert "Brent bound" in out
        assert "critical path" in out

    def test_profile_simulated_time_within_brent_bound(self, capsys):
        assert main(
            ["profile", "--target", "trigrid:6x6", "--pattern", "cycle:4",
             "--rounds", "1", "--processors", "1,8,64"]
        ) == 0
        out = capsys.readouterr().out
        rows = [
            line.split() for line in out.splitlines()
            if line.strip() and line.split()[0].isdigit()
        ]
        assert len(rows) == 3
        for row in rows:
            makespan = int(row[1].replace(",", ""))
            bound = int(row[4].replace(",", ""))
            assert makespan <= bound

    def test_profile_writes_chrome_trace_and_metrics(self, capsys, tmp_path):
        trace_path = tmp_path / "sched.json"
        prom_path = tmp_path / "sched.prom"
        assert main(
            ["profile", "--target", "trigrid:5x5", "--pattern", "triangle",
             "--rounds", "1", "--processors", "8",
             "--chrome-trace", str(trace_path), "--metrics", str(prom_path)]
        ) == 0
        doc = json.loads(trace_path.read_text(encoding="utf-8"))
        assert doc["traceEvents"]
        assert any(ev["ph"] == "X" for ev in doc["traceEvents"])
        prom = prom_path.read_text(encoding="utf-8")
        assert 'repro_schedule_makespan{processors="8"}' in prom
        assert "repro_trace_work" in prom

    def test_profile_rejects_bad_processors(self):
        for bad in ("0", "4,-1", "x"):
            with pytest.raises(SystemExit):
                main(
                    ["profile", "--target", "trigrid:5x5",
                     "--pattern", "triangle", "--processors", bad]
                )


class TestBatchMetrics:
    def test_batch_writes_prometheus_metrics(self, capsys, tmp_path):
        prom_path = tmp_path / "batch.prom"
        assert main(
            ["batch", "--target", "grid:5x5",
             "--patterns", "cycle:4,cycle:4", "--rounds", "1",
             "--session-stats", "--metrics", str(prom_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "artifact" in out  # the stats table
        prom = prom_path.read_text(encoding="utf-8")
        assert "repro_cache_hits_total" in prom
        assert "repro_cache_misses_total" in prom
        assert "repro_trace_work" in prom


class TestLintCommand:
    SRC = str(Path(__file__).parents[1] / "src" / "repro")

    def test_clean_tree_exits_zero(self, capsys):
        assert main(["lint", self.SRC]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n", encoding="utf-8")
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "RPR003" in out and "1 finding" in out

    def test_json_format_and_output(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n", encoding="utf-8")
        report = tmp_path / "lint.json"
        assert main(
            ["lint", str(bad), "--format", "json",
             "--output", str(report)]
        ) == 1
        data = json.loads(report.read_text(encoding="utf-8"))
        assert data["count"] == 1
        assert data["findings"][0]["rule"] == "RPR003"
        assert data["findings"][0]["line"] == 1

    def test_json_to_stdout(self, capsys):
        assert main(["lint", self.SRC, "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["count"] == 0 and data["findings"] == []
