"""Baseline comparators: all must agree with exhaustive backtracking."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    color_coding_decide,
    colorful_tree_search,
    count_isomorphisms,
    eppstein_decide,
    has_isomorphism,
    naive_ball_cover,
    ullmann_count,
    ullmann_has,
)
from repro.graphs import (
    Graph,
    cycle_graph,
    delaunay_graph,
    grid_graph,
    path_graph,
    triangulated_grid,
    wheel_graph,
)
from repro.isomorphism import (
    clique_pattern,
    cycle_pattern,
    path_pattern,
    star_pattern,
    triangle,
)
from repro.planar import embed_geometric


class TestUllmann:
    @pytest.mark.parametrize(
        "pattern",
        [triangle(), path_pattern(3), cycle_pattern(4), star_pattern(3)],
        ids=["k3", "p3", "c4", "s3"],
    )
    def test_count_matches_backtracking(self, pattern):
        g = triangulated_grid(3, 4).graph
        assert ullmann_count(pattern, g) == count_isomorphisms(pattern, g)

    def test_negative(self):
        assert not ullmann_has(triangle(), grid_graph(4, 4).graph)
        assert not ullmann_has(clique_pattern(4), wheel_graph(6).graph)

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=3, max_value=10),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_random_graphs(self, n, seed):
        rng = np.random.default_rng(seed)
        edges = [
            (int(u), int(v))
            for u, v in rng.integers(0, n, size=(2 * n, 2))
            if u != v
        ]
        g = Graph(n, edges)
        for pattern in (triangle(), path_pattern(3)):
            assert ullmann_has(pattern, g) == has_isomorphism(pattern, g)


class TestColorCoding:
    def test_tree_pattern_positive(self):
        g = grid_graph(6, 6).graph
        found, _ = color_coding_decide(path_pattern(4), g, seed=0)
        assert found

    def test_tree_pattern_negative(self):
        g = path_graph(4).graph
        found, _ = color_coding_decide(path_pattern(6), g, seed=1)
        assert not found

    def test_star_pattern(self):
        g = wheel_graph(8).graph
        found, _ = color_coding_decide(star_pattern(4), g, seed=2)
        assert found

    def test_non_tree_pattern_fallback(self):
        g = triangulated_grid(4, 4).graph
        found, _ = color_coding_decide(triangle(), g, seed=3)
        assert found
        found2, _ = color_coding_decide(
            triangle(), grid_graph(4, 4).graph, seed=4
        )
        assert not found2

    def test_colorful_search_needs_tree(self):
        g = grid_graph(3, 3).graph
        with pytest.raises(ValueError):
            colorful_tree_search(triangle(), g, np.zeros(9, dtype=int))

    def test_colorful_search_respects_colors(self):
        # A path of 3 with all-equal colors is never colorful.
        g = path_graph(5).graph
        assert not colorful_tree_search(
            path_pattern(3), g, np.zeros(5, dtype=int)
        )
        assert colorful_tree_search(
            path_pattern(3), g, np.arange(5) % 3
        )

    def test_cost_charged(self):
        g = grid_graph(4, 4).graph
        _, cost = color_coding_decide(
            path_pattern(3), g, seed=5, repetitions=3
        )
        assert cost.work > 0 and cost.depth <= cost.work


class TestNaiveBallCover:
    def test_total_size_quadratic_on_path(self):
        # Balls of radius d in a path: ~ (2d+1) n vertices in total; on a
        # star they explode to n^2 — capture the contrast on a cycle.
        g = cycle_graph(40).graph
        cover = naive_ball_cover(g, d=10)
        assert cover.total_piece_size == 40 * 21

    def test_every_ball_contains_center(self):
        g = grid_graph(4, 4).graph
        cover = naive_ball_cover(g, d=2)
        for v, (sub, originals) in enumerate(cover.pieces):
            assert v in set(originals.tolist())

    def test_invalid_d(self):
        with pytest.raises(ValueError):
            naive_ball_cover(path_graph(3).graph, d=-1)


class TestEppstein:
    @pytest.mark.parametrize(
        "gg,pattern,expect",
        [
            (triangulated_grid(5, 5), triangle(), True),
            (grid_graph(5, 5), triangle(), False),
            (grid_graph(5, 5), cycle_pattern(4), True),
            (wheel_graph(9), star_pattern(4), True),
            (cycle_graph(12), cycle_pattern(5), False),
        ],
        ids=["k3+", "k3-", "c4+", "s4+", "c5-"],
    )
    def test_decisions(self, gg, pattern, expect):
        emb, _ = embed_geometric(gg)
        result = eppstein_decide(gg.graph, emb, pattern)
        assert result.found == expect

    def test_witness(self):
        gg = triangulated_grid(4, 4)
        emb, _ = embed_geometric(gg)
        result = eppstein_decide(gg.graph, emb, triangle(), want_witness=True)
        assert result.found
        w = result.witness
        for a, b in triangle().graph.iter_edges():
            assert gg.graph.has_edge(w[a], w[b])

    def test_deterministic(self):
        gg = delaunay_graph(50, seed=3)
        emb, _ = embed_geometric(gg)
        a = eppstein_decide(gg.graph, emb, triangle())
        b = eppstein_decide(gg.graph, emb, triangle())
        assert a.found == b.found and a.cost == b.cost

    def test_sequential_depth_is_linearish(self):
        gg = path_graph(200)
        emb, _ = embed_geometric(gg)
        result = eppstein_decide(gg.graph, emb, path_pattern(3))
        assert result.found
        # Depth tracks n (the BFS is charged sequentially).
        assert result.cost.depth >= gg.graph.n
