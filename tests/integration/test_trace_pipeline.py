"""Integration: the drivers' span trees account for every charged unit.

For each end-to-end driver, the returned ``trace`` must (a) total exactly
the driver's flat ``cost`` (the refactor is attribution, not re-pricing),
(b) satisfy the running-total == recursive-fold invariant at every node,
and (c) contain the pipeline's expected phases.
"""

import numpy as np

from repro.connectivity import minimum_vertex_cuts, planar_vertex_connectivity
from repro.graphs import cycle_graph, grid_graph, triangulated_grid, wheel_graph
from repro.isomorphism import (
    count_occurrences_exact,
    cycle_pattern,
    decide_subgraph_isomorphism,
    list_occurrences,
    triangle,
)
from repro.planar import embed_geometric
from repro.separating.driver import decide_separating_isomorphism


def _check(trace, cost, *phases):
    assert trace is not None
    assert trace.cost == cost
    for span in trace.walk():
        assert span.cost == span.folded()
    names = {s.name for s in trace.walk()}
    assert set(phases) <= names, set(phases) - names


def _target(gg):
    emb, _ = embed_geometric(gg)
    return gg.graph, emb


class TestDriverTraces:
    def test_decide(self):
        graph, emb = _target(triangulated_grid(6, 6))
        for engine in ("parallel", "sequential"):
            r = decide_subgraph_isomorphism(
                graph, emb, triangle(), seed=0, engine=engine
            )
            assert r.found
            _check(
                r.trace, r.cost,
                "embed", "round", "cover", "clustering", "pieces",
                "dp-solve",
            )

    def test_listing(self):
        graph, emb = _target(grid_graph(4, 4))
        r = list_occurrences(graph, emb, cycle_pattern(4), seed=0)
        _check(
            r.trace, r.cost,
            "round", "cover", "clustering", "dp-solve", "dedup",
        )

    def test_exact_count(self):
        graph, emb = _target(grid_graph(4, 4))
        r = count_occurrences_exact(graph, emb, cycle_pattern(4))
        _check(
            r.trace, r.cost,
            "components", "bfs", "window-count", "minfill",
            "sequential-dp",
        )

    def test_separating(self):
        graph, emb = _target(cycle_graph(8))
        marked = np.ones(graph.n, dtype=bool)
        r = decide_separating_isomorphism(
            graph, emb, marked, cycle_pattern(4), seed=0, rounds=2
        )
        _check(r.trace, r.cost, "round", "cover", "pieces")

    def test_vertex_connectivity(self):
        graph, emb = _target(wheel_graph(6))
        r = planar_vertex_connectivity(graph, emb, seed=0, rounds=2)
        assert r.connectivity == 3
        _check(
            r.trace, r.cost,
            "components", "biconnectivity", "face-vertex", "cycle-search",
            "cover", "dp-solve",
        )

    def test_min_cuts(self):
        graph, emb = _target(cycle_graph(7))
        r = minimum_vertex_cuts(graph, emb, seed=0, max_iterations=2)
        _check(r.trace, r.cost, "iteration", "cover", "planar-vc")
