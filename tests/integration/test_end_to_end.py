"""End-to-end integration: full pipeline vs oracles across the stack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    count_isomorphisms,
    eppstein_decide,
    has_isomorphism,
    ullmann_has,
)
from repro.connectivity import (
    planar_vertex_connectivity,
    vertex_connectivity_flow,
)
from repro.graphs import Graph, delaunay_graph
from repro.isomorphism import (
    cycle_pattern,
    decide_subgraph_isomorphism,
    list_occurrences,
    path_pattern,
    star_pattern,
    triangle,
)
from repro.planar import embed_geometric, embed_planar


PATTERNS = {
    "triangle": triangle(),
    "p4": path_pattern(4),
    "c4": cycle_pattern(4),
    "star3": star_pattern(3),
}


class TestDecisionPipeline:
    @settings(max_examples=12, deadline=None)
    @given(
        st.integers(min_value=0, max_value=50),
        st.sampled_from(sorted(PATTERNS)),
    )
    def test_matches_oracle_on_random_delaunay(self, seed, pname):
        gg = delaunay_graph(45, seed=seed)
        emb, _ = embed_geometric(gg)
        pattern = PATTERNS[pname]
        expect = has_isomorphism(pattern, gg.graph)
        result = decide_subgraph_isomorphism(
            gg.graph, emb, pattern, seed=seed
        )
        if expect:
            assert result.found  # w.h.p.; deterministic failure = bug
        else:
            assert not result.found  # one-sided: never a false positive

    def test_all_five_algorithms_agree(self):
        gg = delaunay_graph(40, seed=3)
        emb, _ = embed_geometric(gg)
        pattern = triangle()
        expect = has_isomorphism(pattern, gg.graph)
        assert ullmann_has(pattern, gg.graph) == expect
        assert eppstein_decide(gg.graph, emb, pattern).found == expect
        assert (
            decide_subgraph_isomorphism(
                gg.graph, emb, pattern, seed=0
            ).found
            == expect
        )
        assert (
            decide_subgraph_isomorphism(
                gg.graph, emb, pattern, seed=0, engine="sequential"
            ).found
            == expect
        )


class TestListingPipeline:
    def test_listing_equals_exhaustive_on_delaunay(self):
        gg = delaunay_graph(35, seed=9)
        emb, _ = embed_geometric(gg)
        result = list_occurrences(gg.graph, emb, triangle(), seed=1)
        assert len(result.witnesses) == count_isomorphisms(
            triangle(), gg.graph
        )


class TestConnectivityPipeline:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=40))
    def test_random_planar_subgraph_connectivity(self, seed):
        # Random spanning-ish subgraphs of Delaunay triangulations give a
        # mix of kappa in {0, 1, 2, 3}.
        rng = np.random.default_rng(seed)
        base = delaunay_graph(24, seed=seed).graph
        keep = rng.random(base.m) < 0.8
        g = Graph(base.n, base.edges()[keep])
        emb = embed_planar(g)
        result = planar_vertex_connectivity(g, emb, seed=seed, rounds=3)
        flow = vertex_connectivity_flow(g)
        if result.connectivity != flow:
            # Monte Carlo one-sidedness: we may only ever *underestimate*
            # by missing a separating cycle — never overestimate, and with
            # 3 rounds misses should effectively not happen.
            pytest.fail(f"kappa mismatch: ours={result.connectivity} "
                        f"flow={flow} (seed={seed})")


class TestCostSanity:
    def test_work_dominates_depth_everywhere(self):
        gg = delaunay_graph(60, seed=5)
        emb, _ = embed_geometric(gg)
        result = decide_subgraph_isomorphism(
            gg.graph, emb, cycle_pattern(4), seed=2
        )
        assert 0 < result.cost.depth <= result.cost.work

    def test_parallel_engine_shallower_than_sequential(self):
        gg = delaunay_graph(120, seed=6)
        emb, _ = embed_geometric(gg)
        par = decide_subgraph_isomorphism(
            gg.graph, emb, triangle(), seed=0, rounds=1
        )
        seq = decide_subgraph_isomorphism(
            gg.graph, emb, triangle(), seed=0, rounds=1,
            engine="sequential",
        )
        assert par.found == seq.found
        assert par.cost.depth < seq.cost.depth
