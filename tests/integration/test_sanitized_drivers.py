"""Sanitized end-to-end runs: every family, byte-identical on/off.

Two acceptance criteria live here.  First, each driver family runs clean
under the CREW sanitizer (its declared per-branch write-sets really are
disjoint — covers partition vertices, pieces own their result slots, DP
layers are node-disjoint).  Second, the sanitizer is purely
observational: results AND full trace trees are identical with it on or
off, so CI can run the whole suite under ``REPRO_SANITIZE=crew`` without
changing what is being tested.
"""

import numpy as np
import pytest

from repro.connectivity import planar_vertex_connectivity
from repro.graphs import (
    cycle_graph,
    delaunay_graph,
    grid_graph,
    triangulated_grid,
    wheel_graph,
)
from repro.isomorphism import (
    count_occurrences_exact,
    cycle_pattern,
    decide_disconnected,
    decide_subgraph_isomorphism,
    list_occurrences,
    path_pattern,
    triangle,
)
from repro.planar import embed_geometric
from repro.pram import sanitized


def _target(gg):
    emb, _ = embed_geometric(gg)
    return gg.graph, emb


def _pattern_union(a, b):
    """A 2-component pattern for the disconnected driver."""
    from repro.graphs import Graph
    from repro.isomorphism.pattern import Pattern

    offset = a.k
    edges = a.edge_list() + [
        (u + offset, v + offset) for u, v in b.edge_list()
    ]
    return Pattern(Graph(a.k + b.k, edges))


def _families():
    """(name, thunk) pairs: thunk runs the driver, returns (result, trace)."""
    def decide():
        graph, emb = _target(triangulated_grid(6, 6))
        r = decide_subgraph_isomorphism(graph, emb, triangle(), seed=0)
        return (r.found, r.rounds_used, r.cost.work, r.cost.depth), r.trace

    def listing():
        graph, emb = _target(grid_graph(4, 4))
        r = list_occurrences(graph, emb, cycle_pattern(4), seed=0)
        return (
            sorted(tuple(sorted(o)) for o in r.occurrences),
            r.cost.work,
            r.cost.depth,
        ), r.trace

    def count_exact():
        graph, emb = _target(grid_graph(4, 4))
        r = count_occurrences_exact(graph, emb, cycle_pattern(4))
        return (r.isomorphisms, r.cost.work, r.cost.depth), r.trace

    def separating():
        from repro.separating.driver import decide_separating_isomorphism

        graph, emb = _target(cycle_graph(8))
        marked = np.ones(graph.n, dtype=bool)
        r = decide_separating_isomorphism(
            graph, emb, marked, cycle_pattern(4), seed=0, rounds=2
        )
        return (r.found, r.rounds_used, r.cost.work, r.cost.depth), r.trace

    def vc():
        graph, emb = _target(wheel_graph(6))
        r = planar_vertex_connectivity(graph, emb, seed=0, rounds=2)
        return (r.connectivity, r.cost.work, r.cost.depth), r.trace

    def disconnected():
        gg = delaunay_graph(30, seed=2)
        graph, emb = _target(gg)
        pattern = _pattern_union(triangle(), path_pattern(3))
        r = decide_disconnected(graph, emb, pattern, seed=0, colorings=6)
        return (
            r.found, r.colorings_used, r.cost.work, r.cost.depth
        ), None  # no span tree on this result type

    return [
        ("decide", decide),
        ("listing", listing),
        ("count-exact", count_exact),
        ("separating", separating),
        ("vc", vc),
        ("disconnected", disconnected),
    ]


@pytest.mark.parametrize(
    "name,thunk", _families(), ids=[n for n, _ in _families()]
)
def test_family_clean_and_observational(name, thunk):
    plain, plain_trace = thunk()
    with sanitized("crew"):
        checked, checked_trace = thunk()  # raises CREWViolation on a race
    assert checked == plain
    if plain_trace is not None:
        assert checked_trace.to_dict() == plain_trace.to_dict()
