"""EST clustering tests: Lemma 2.3 properties, Observation 1."""

import numpy as np
import pytest

from repro.cluster import est_clustering
from repro.graphs import (
    Graph,
    component_members,
    connected_components,
    delaunay_graph,
    grid_graph,
    path_graph,
)


class TestBasics:
    def test_empty_graph(self):
        clustering, cost = est_clustering(Graph.empty(0), beta=4, seed=0)
        assert clustering.count == 0

    def test_labels_partition(self):
        g = grid_graph(8, 8).graph
        clustering, _ = est_clustering(g, beta=4, seed=1)
        assert clustering.labels.shape == (g.n,)
        assert clustering.labels.min() == 0
        assert clustering.labels.max() == clustering.count - 1

    def test_clusters_connected(self):
        g = delaunay_graph(150, seed=2).graph
        clustering, _ = est_clustering(g, beta=3, seed=3)
        for members in component_members(clustering.labels, clustering.count):
            sub, _ = g.induced_subgraph(members)
            _, count, _ = connected_components(sub)
            assert count == 1

    def test_reproducible(self):
        g = grid_graph(10, 10).graph
        a, _ = est_clustering(g, beta=4, seed=7)
        b, _ = est_clustering(g, beta=4, seed=7)
        assert np.array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        g = grid_graph(10, 10).graph
        a, _ = est_clustering(g, beta=2, seed=1)
        b, _ = est_clustering(g, beta=2, seed=2)
        assert not np.array_equal(a.labels, b.labels)

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            est_clustering(path_graph(3).graph, beta=0, seed=0)

    def test_isolated_vertices_form_clusters(self):
        clustering, _ = est_clustering(Graph.empty(5), beta=2, seed=0)
        assert clustering.count == 5


class TestLemma23:
    """Statistical checks of the Lemma 2.3 guarantees."""

    def test_edge_cut_probability_bound(self):
        # P(edge crosses) <= 1/beta.  Average over seeds; allow slack 1.3x.
        g = grid_graph(15, 15).graph
        beta = 6.0
        fractions = [
            est_clustering(g, beta=beta, seed=s)[0].cut_fraction(g)
            for s in range(40)
        ]
        assert np.mean(fractions) <= 1.3 / beta

    def test_larger_beta_cuts_fewer_edges(self):
        g = delaunay_graph(200, seed=5).graph
        small = np.mean(
            [est_clustering(g, 2, seed=s)[0].cut_fraction(g) for s in range(15)]
        )
        large = np.mean(
            [est_clustering(g, 10, seed=s)[0].cut_fraction(g) for s in range(15)]
        )
        assert large < small

    def test_radius_scales_with_beta_log_n(self):
        g = grid_graph(20, 20).graph
        beta = 3.0
        for s in range(10):
            clustering, _ = est_clustering(g, beta=beta, seed=s)
            # O(beta log n) with a generous constant.
            assert clustering.radius <= 4 * beta * np.log(g.n)

    def test_cluster_diameter_bounded(self):
        g = delaunay_graph(150, seed=9).graph
        beta = 3.0
        clustering, _ = est_clustering(g, beta=beta, seed=4)
        # Each cluster's diameter (in the induced subgraph) is at most
        # 2 * radius; verify via BFS inside each cluster.
        from repro.graphs import parallel_bfs

        for members in component_members(clustering.labels, clustering.count):
            sub, _ = g.induced_subgraph(members)
            res, _ = parallel_bfs(sub, [0])
            assert res.depth <= 2 * clustering.radius + 1

    def test_observation1_connected_subgraph_survives(self):
        # Observation 1: a connected k-vertex subgraph stays in one cluster
        # with probability >= 1/2 under 2k-clustering.  Use a 3x3 sub-block
        # of a grid (k = 9).
        gg = grid_graph(12, 12)
        g = gg.graph
        block = [r * 12 + c for r in range(4, 7) for c in range(4, 7)]
        k = len(block)
        hits = 0
        trials = 60
        for s in range(trials):
            clustering, _ = est_clustering(g, beta=2 * k, seed=s)
            if len({int(clustering.labels[v]) for v in block}) == 1:
                hits += 1
        assert hits / trials >= 0.5


class TestCost:
    def test_work_linear(self):
        g = delaunay_graph(500, seed=1).graph
        _, cost = est_clustering(g, beta=4, seed=0)
        assert cost.work <= 8 * (g.n + g.m)

    def test_depth_tracks_radius(self):
        g = grid_graph(25, 25).graph
        clustering, cost = est_clustering(g, beta=2, seed=0)
        assert cost.depth <= clustering.radius + 2
