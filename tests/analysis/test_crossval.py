"""Static/dynamic CREW cross-validation.

The static pass infers, per function, which shadow-array declarations a
parallel region makes (``region_reports``).  The sanitizer, run for real,
*observes* which declarations actually happen (``observing_writes``).
Soundness direction: every dynamically observed shadow declaration must
appear in the static write-set inferred for the same (file, function) —
i.e. static ⊇ dynamic.  The reverse inclusion cannot hold (static
analysis over-approximates paths not taken on this input), so it is not
asserted.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.analysis import build_project, region_reports
from repro.analysis.dataflow import param_write_summaries
from repro.connectivity import planar_vertex_connectivity
from repro.graphs import triangulated_grid
from repro.isomorphism import (
    count_occurrences_exact,
    decide_subgraph_isomorphism,
    list_occurrences,
    triangle,
)
from repro.isomorphism.disconnected import decide_disconnected
from repro.planar import embed_geometric
from repro.pram import Cost, ShadowArray, Tracer, sanitized
from repro.pram.sanitize import WriteObservation, observing_writes
from repro.separating.driver import decide_separating_isomorphism

from .test_contracts import real_project


class TestObservingWrites:
    def _record_once(self, observed_label="unit-cells"):
        cells = ShadowArray(observed_label, 4)
        tracer = Tracer("t")
        with tracer.parallel("region") as region:
            with region.branch("arm") as arm:
                arm.charge(Cost.step(1))
                arm.record_writes(cells, [0])

    def test_observation_attributes_to_caller(self):
        with sanitized("crew"):
            with observing_writes() as observed:
                self._record_once()
        assert observed, "no write observations collected"
        obs = observed[0]
        assert isinstance(obs, WriteObservation)
        assert obs.shadow is True
        assert obs.label == "unit-cells"
        assert Path(obs.path).name == "test_crossval.py"
        assert obs.function == "_record_once"
        assert obs.line > 0

    def test_ndarray_observations_not_shadow(self):
        arr = np.zeros(4)
        tracer = Tracer("t")
        with sanitized("crew"):
            with observing_writes() as observed:
                with tracer.parallel("region") as region:
                    with region.branch("arm") as arm:
                        arm.charge(Cost.step(1))
                        arm.record_writes(arr, [0])
        assert observed and all(not o.shadow for o in observed)

    def test_nested_observers_restore(self):
        with sanitized("crew"):
            with observing_writes() as outer:
                self._record_once()
                first = len(outer)
                assert first > 0
                with observing_writes() as inner:
                    self._record_once()
                assert len(inner) == first  # inner saw only its own
                assert len(outer) == first  # outer paused during inner
                self._record_once()
                assert len(outer) == 2 * first

    def test_no_observer_is_harmless(self):
        with sanitized("crew"):
            self._record_once()  # must not raise


def _observed_declarations():
    """Run all six drivers sanitized and collect shadow declarations."""
    gg = triangulated_grid(4, 4)
    emb, _ = embed_geometric(gg)
    graph = gg.graph
    pat = triangle()
    marked = np.zeros(graph.n, dtype=bool)
    marked[0] = True
    marked[graph.n - 1] = True
    with sanitized("crew"):
        with observing_writes() as observed:
            decide_subgraph_isomorphism(graph, emb, pat, seed=3, rounds=1)
            list_occurrences(graph, emb, pat, seed=3, max_iterations=2)
            count_occurrences_exact(graph, emb, pat)
            decide_disconnected(graph, emb, pat, seed=3)
            decide_separating_isomorphism(
                graph, emb, marked, pat, seed=3, rounds=1
            )
            planar_vertex_connectivity(graph, emb, seed=0)
    src = Path(__file__).parents[2] / "src" / "repro"
    sites = set()
    for obs in observed:
        if not obs.shadow:
            continue
        path = Path(obs.path).resolve()
        if src.resolve() not in path.parents:
            continue
        sites.add((str(path), obs.function, obs.label))
    return sites


def _static_shadow_labels():
    """Labels the static pass infers, keyed by (resolved path, function)."""
    proj = real_project()
    summaries = param_write_summaries(proj)
    inferred = {}
    for info in proj.functions.values():
        key = (str(Path(info.ctx.path).resolve()), info.name)
        for report in region_reports(proj, info, summaries=summaries):
            inferred.setdefault(key, set()).update(
                report.shadow_labels.values()
            )
    return inferred


@pytest.mark.slow
class TestCrossValidation:
    def test_static_write_sets_cover_dynamic_observations(self):
        observed = _observed_declarations()
        assert observed, (
            "sanitized driver runs produced no shadow declarations; "
            "the cross-validation would be vacuous"
        )
        inferred = _static_shadow_labels()
        missing = sorted(
            (path, function, label)
            for path, function, label in observed
            if label not in inferred.get((path, function), set())
        )
        assert missing == [], (
            "dynamically observed shadow declarations absent from the "
            f"static write sets: {missing}"
        )
