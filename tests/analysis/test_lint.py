"""The cost-soundness analyzer (repro.analysis).

Fixture modules under ``fixtures/`` carry ``MARK:`` comments at the lines
where findings must anchor; ``line_of`` resolves them so the assertions
don't break on unrelated fixture edits.  The final test locks the
acceptance criterion: the analyzer is clean on the real ``src/repro``.
"""

import json
from pathlib import Path


from repro.analysis import (
    ALL_RULES,
    RULE_SUMMARIES,
    default_project_passes,
    lint_paths,
    lint_source,
)
from repro.analysis.linter import parse_noqa, render_json, render_text

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(__file__).parents[2] / "src" / "repro"


def line_of(path: Path, marker: str) -> int:
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if f"MARK: {marker}" in line:
            return lineno
    raise AssertionError(f"marker {marker!r} not found in {path}")


def lint_fixture(name: str):
    path = FIXTURES / name
    return path, lint_source(
        path.read_text(encoding="utf-8"), path=str(path), traced=True
    )


class TestRuleCatalog:
    def test_module_rule_ids_unique_and_complete(self):
        ids = [rule.id for rule in ALL_RULES]
        assert ids == ["RPR001", "RPR002", "RPR003", "RPR004"]
        assert all(rule.name and rule.description for rule in ALL_RULES)

    def test_summaries_cover_every_rule(self):
        expected = {
            "RPR001", "RPR002", "RPR003", "RPR004",
            "RPR010", "RPR011", "RPR012", "RPR013", "RPR014",
            "RPR020", "RPR021", "RPR022",
            "RPR030", "RPR031", "RPR032",
            "RPR999",
        }
        assert set(RULE_SUMMARIES) == expected
        for rule in ALL_RULES:
            assert rule.id in RULE_SUMMARIES
        for pass_ in default_project_passes():
            for rule_id in pass_.rules:
                assert rule_id in RULE_SUMMARIES


class TestUnchargedWork:
    def test_exact_findings(self):
        path, findings = lint_fixture("uncharged.py")
        assert [(f.rule, f.line) for f in findings] == [
            ("RPR001", line_of(path, "bad-tracer-param")),
            ("RPR001", line_of(path, "bad-builds-tracker")),
        ]

    def test_ok_variants_not_flagged(self):
        _, findings = lint_fixture("uncharged.py")
        names = " ".join(f.message for f in findings)
        for ok in ("ok_charges", "ok_uses_primitive",
                   "ok_forwards_tracer", "ok_leaf_helper", "suppressed"):
            assert ok not in names


class TestDepthHazard:
    def test_exact_findings(self):
        path, findings = lint_fixture("depth.py")
        assert [(f.rule, f.line) for f in findings] == [
            ("RPR002", line_of(path, "bad-for-loop")),
            ("RPR002", line_of(path, "bad-while-loop")),
            ("RPR002", line_of(path, "bad-span-loop")),
        ]

    def test_parallel_idiom_exempt(self):
        _, findings = lint_fixture("depth.py")
        assert all("ok_parallel_idiom" not in f.message for f in findings)

    def test_charged_constant_depth_span_exempt(self):
        # Regression: a loop inside a span that explicitly charges a
        # Cost with constant depth models one data-parallel phase — the
        # loop is a simulation artifact, not a sequential chain.
        _, findings = lint_fixture("depth.py")
        messages = " ".join(f.message for f in findings)
        assert "ok_charged_span_loop" not in messages
        assert "ok_charged_step_span" not in messages
        # ...but a span charging *graph-sized* depth stays flagged.
        assert "bad_nonconst_depth_span" in messages


class TestNondeterminism:
    def test_exact_findings(self):
        path, findings = lint_fixture("nondet.py")
        assert [(f.rule, f.line) for f in findings] == [
            ("RPR003", line_of(path, "bad-import-random")),
            ("RPR003", line_of(path, "bad-legacy-numpy")),
            ("RPR003", line_of(path, "bad-global-seed")),
        ]

    def test_fires_outside_traced_packages_too(self):
        path = FIXTURES / "nondet.py"
        findings = lint_source(
            path.read_text(encoding="utf-8"), path=str(path), traced=False
        )
        assert {f.rule for f in findings} == {"RPR003"}


class TestUnsafeSpan:
    def test_exact_findings(self):
        path, findings = lint_fixture("spans.py")
        assert [(f.rule, f.line) for f in findings] == [
            ("RPR004", line_of(path, "bad-bare-span")),
            ("RPR004", line_of(path, "bad-bare-parallel")),
        ]

    def test_with_and_exitstack_managed(self):
        _, findings = lint_fixture("spans.py")
        lines = {f.line for f in findings}
        path = FIXTURES / "spans.py"
        src = path.read_text(encoding="utf-8").splitlines()
        for lineno in lines:
            assert "ok_" not in src[lineno - 1]


class TestNoqa:
    def test_parse_specific_rules(self):
        noqa = parse_noqa("x = 1  # repro: noqa[RPR001, RPR003]\n")
        assert noqa == {1: {"RPR001", "RPR003"}}

    def test_parse_bare(self):
        assert parse_noqa("x = 1  # repro: noqa\n") == {1: None}

    def test_bare_suppresses_everything(self):
        src = (
            "import numpy as np\n"
            "def f(graph, tracer):  # repro: noqa\n"
            "    return np.cumsum(graph.deg)\n"
        )
        assert lint_source(src, path="f.py", traced=True) == []

    def test_wrong_rule_id_does_not_suppress(self):
        src = (
            "import numpy as np\n"
            "def f(graph, tracer):  # repro: noqa[RPR004]\n"
            "    return np.cumsum(graph.deg)\n"
        )
        findings = lint_source(src, path="f.py", traced=True)
        assert [f.rule for f in findings] == ["RPR001"]

    def test_syntax_error_reported_not_raised(self):
        findings = lint_source("def broken(:\n", path="b.py", traced=True)
        assert [f.rule for f in findings] == ["RPR999"]


class TestRenderers:
    def _findings(self):
        _, findings = lint_fixture("nondet.py")
        return findings

    def test_text_mentions_rule_and_path(self, capsys):
        import sys

        render_text(self._findings(), sys.stdout)
        out = capsys.readouterr().out
        assert "RPR003" in out and "nondet.py" in out
        assert out.strip().endswith("3 findings")

    def test_json_round_trips(self, tmp_path):
        out = tmp_path / "lint.json"
        with open(out, "w", encoding="utf-8") as fh:
            render_json(self._findings(), fh)
        data = json.loads(out.read_text(encoding="utf-8"))
        assert data["count"] == 3
        assert {f["rule"] for f in data["findings"]} == {"RPR003"}
        assert set(data["rules"]) == set(RULE_SUMMARIES)

    def test_json_findings_deterministically_ordered(self):
        # Satellite contract: --format json sorts by (path, line, rule).
        findings = lint_paths(
            [str(FIXTURES / "spans.py"), str(FIXTURES / "nondet.py")]
        )
        keys = [(f.path, f.line, f.rule, f.symbol) for f in findings]
        assert keys == sorted(keys)
        assert len({f.path for f in findings}) == 2


class TestRealTree:
    def test_src_repro_is_lint_clean(self):
        findings = lint_paths([str(SRC)])
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_lint_paths_accepts_single_file(self):
        findings = lint_paths([str(FIXTURES / "spans.py")])
        assert {f.rule for f in findings} == {"RPR004"}
