"""Task-purity analysis (RPR030-RPR032)."""

from repro.analysis import lint_source

from .test_lint import line_of, lint_fixture


class TestFixtureFindings:
    def test_exact_findings(self):
        path, findings = lint_fixture("purity_fx.py")
        got = [(f.rule, f.line) for f in findings]
        assert got == sorted(
            [
                ("RPR031", line_of(path, "bad-rng")),
                ("RPR032", line_of(path, "bad-clock")),
                ("RPR030", line_of(path, "bad-global")),
                ("RPR032", line_of(path, "bad-open")),
            ],
            key=lambda pair: (pair[1], pair[0]),
        )

    def test_violations_name_the_root(self):
        _, findings = lint_fixture("purity_fx.py")
        assert all("bad_task" in f.message for f in findings)

    def test_ok_and_unreachable_not_flagged(self):
        _, findings = lint_fixture("purity_fx.py")
        symbols = {f.symbol.rsplit(".", 1)[-1] for f in findings}
        assert "ok_task" not in symbols
        # Impure code NOT reachable from a @task_pure root is out of scope.
        assert "unreachable_impurity" not in symbols


class TestScope:
    def test_no_roots_means_no_findings(self):
        source = (
            "import time\n"
            "def helper():\n"
            "    return time.monotonic()\n"
        )
        assert lint_source(source, traced=True, rules=()) == []

    def test_immutable_module_constant_allowed(self):
        source = (
            "_CODES = {'a': 1}\n"  # never mutated: fine to close over
            "@task_pure\n"
            "def run(piece):\n"
            "    return _CODES.get(piece)\n"
        )
        assert lint_source(source, traced=True, rules=()) == []

    def test_mutated_module_dict_flagged(self):
        source = (
            "_CACHE = {}\n"
            "def fill(k, v):\n"
            "    _CACHE[k] = v\n"
            "@task_pure\n"
            "def run(piece):\n"
            "    return _CACHE.get(piece)\n"  # line 6
        )
        findings = lint_source(source, traced=True, rules=())
        assert [(f.rule, f.line) for f in findings] == [("RPR030", 6)]

    def test_seeded_rng_allowed_unseeded_flagged(self):
        source = (
            "import numpy as np\n"
            "@task_pure\n"
            "def run(piece, seed):\n"
            "    good = np.random.default_rng(seed)\n"
            "    bad = np.random.default_rng()\n"  # line 5
            "    return good, bad\n"
        )
        findings = lint_source(source, traced=True, rules=())
        assert [(f.rule, f.line) for f in findings] == [("RPR031", 5)]

    def test_violation_through_transitive_callee(self):
        source = (
            "import time\n"
            "def leaf():\n"
            "    return time.monotonic()\n"  # line 3
            "def middle():\n"
            "    return leaf()\n"
            "@task_pure\n"
            "def run(piece):\n"
            "    return middle()\n"
        )
        findings = lint_source(source, traced=True, rules=())
        assert [(f.rule, f.line) for f in findings] == [("RPR032", 3)]
