"""Cost-contract checking (RPR010-RPR014) and the contract registry."""

from pathlib import Path

from repro.analysis import (
    DEFAULT_REQUIRED_CONTRACTS,
    CostContractPass,
    build_project,
    cost_contract,
    lint_source,
    parse_bound,
    task_pure,
)
from repro.analysis.cost_check import infer_cost
from repro.analysis.linter import _build_context, _iter_py_files

from .test_lint import FIXTURES, SRC, line_of, lint_fixture

#: The six paper drivers; the acceptance criterion pins them explicitly.
DRIVERS = (
    "isomorphism.planar_si.decide_subgraph_isomorphism",
    "isomorphism.planar_si.find_occurrence",
    "isomorphism.listing.list_occurrences",
    "isomorphism.counting.count_occurrences_exact",
    "isomorphism.disconnected.decide_disconnected",
    "separating.driver.decide_separating_isomorphism",
    "connectivity.planar_vc.planar_vertex_connectivity",
)


def real_project():
    contexts = []
    for path in _iter_py_files([str(SRC)]):
        ctx, syntax_error = _build_context(
            path.read_text(encoding="utf-8"), str(path), None
        )
        assert syntax_error is None, syntax_error
        contexts.append(ctx)
    return build_project(contexts)


class TestDecorators:
    def test_cost_contract_is_zero_cost(self):
        @cost_contract(work="O(n)", depth="O(log n)")
        def scan(values):
            return values

        assert scan.__name__ == "scan"  # no wrapper
        assert scan.__cost_contract__ == {
            "work": "O(n)", "depth": "O(log n)",
        }
        assert scan([1]) == [1]

    def test_task_pure_marks_without_wrapping(self):
        @task_pure
        def run(piece):
            return piece

        assert run.__task_pure__ is True
        assert run.__name__ == "run"

    def test_real_drivers_carry_runtime_attributes(self):
        from repro.isomorphism import decide_subgraph_isomorphism
        from repro.exec.task import run_piece_task

        contract = decide_subgraph_isomorphism.__cost_contract__
        parse_bound(contract["work"])
        parse_bound(contract["depth"])
        assert run_piece_task.__task_pure__ is True


class TestFixtureFindings:
    def test_exact_findings(self):
        path, findings = lint_fixture("contracts_fx.py")
        got = [(f.rule, f.line) for f in findings]
        assert got == sorted(
            [
                ("RPR010", line_of(path, "bad-work")),
                ("RPR011", line_of(path, "bad-depth")),
                ("RPR012", line_of(path, "bad-bound")),
                ("RPR012", line_of(path, "bad-positional")),
                ("RPR013", line_of(path, "bad-forward")),
            ],
            key=lambda pair: (pair[1], pair[0]),
        )

    def test_ok_variants_not_flagged(self):
        _, findings = lint_fixture("contracts_fx.py")
        messages = " ".join(f.message for f in findings)
        assert "ok_scan" not in messages
        assert "ok_composed" not in messages

    def test_rpr014_missing_registry_contract(self):
        source = "def needs_contract(n):\n    return n\n"
        findings = lint_source(
            source,
            traced=True,
            rules=(),
            passes=(CostContractPass(required=("needs_contract",)),),
        )
        assert [(f.rule, f.line) for f in findings] == [("RPR014", 1)]

    def test_rpr014_quiet_when_contract_present(self):
        source = (
            '@cost_contract(work="O(1)", depth="O(1)")\n'
            "def needs_contract(n):\n"
            "    return 1\n"
        )
        findings = lint_source(
            source,
            traced=True,
            rules=(),
            passes=(CostContractPass(required=("needs_contract",)),),
        )
        assert findings == []


class TestRealTreeContracts:
    def test_registry_fully_contracted(self):
        proj = real_project()
        for qual in DEFAULT_REQUIRED_CONTRACTS:
            info = proj.functions.get(qual)
            assert info is not None, f"registry function {qual} missing"
            assert info.contract is not None, f"{qual} has no contract"

    def test_all_drivers_in_registry(self):
        for qual in DRIVERS:
            assert qual in DEFAULT_REQUIRED_CONTRACTS or qual.endswith(
                "find_occurrence"
            )

    def test_at_least_twelve_verified_contracts(self):
        proj = real_project()
        contracted = [
            f for f in proj.contracted() if f.contract is not None
        ]
        assert len(contracted) >= 12
        quals = {f.qualname for f in contracted}
        for qual in DRIVERS:
            assert qual in quals

    def test_contracts_verify_against_bodies(self):
        # The same check `repro lint` runs, spelled out: every declared
        # contract parses, and no body provably exceeds it (noqa'd charge
        # sites excluded by the linter; here we assert the composed
        # inference stays within bounds for the drivers).
        proj = real_project()
        parsed = {}
        for info in proj.contracted():
            assert info.contract_error is None, info.contract_error
            parsed[info.qualname] = (
                parse_bound(info.contract["work"]),
                parse_bound(info.contract["depth"]),
            )
        for qual in DRIVERS:
            declared_work, declared_depth = parsed[qual]
            inferred_work, inferred_depth = infer_cost(
                proj, proj.functions[qual], parsed
            )
            work_excess = inferred_work.excess(declared_work)
            depth_excess = inferred_depth.excess(declared_depth)
            # planar_vc carries one noqa'd O(n^2) guard charge the raw
            # inference sees; everything else must be exactly within.
            if qual.endswith("planar_vertex_connectivity"):
                continue
            assert work_excess is None, (qual, work_excess)
            assert depth_excess is None, (qual, depth_excess)
