"""The symbolic big-O algebra behind cost contracts (repro.analysis.bounds)."""

import pytest

from repro.analysis import Bound, BoundParseError, Term, parse_bound
from repro.analysis.bounds import par_bound


def b(text):
    return parse_bound(text)


class TestParsing:
    def test_simple_forms(self):
        assert b("O(n)").render() == "O(n)"
        assert b("O(n log n)").render() == "O(n log n)"
        assert b("O(log^2 n)").render() == "O(log^2 n)"
        assert b("O(1)").render() == "O(1)"
        assert b("n + log n").render() == "O(n)"  # bare sums allowed

    def test_m_canonicalizes_to_n(self):
        # Planar hosts: m = Theta(n), so bounds in m mean the same thing.
        assert b("O(m)") == b("O(n)")
        assert b("O(n + m)") == b("O(n)")
        assert b("O(m log m)") == b("O(n log n)")

    def test_atoms_are_opaque(self):
        bound = b("O(c_k n log n)")
        (term,) = bound.terms
        assert term.atoms == (("c_k", 1),)
        assert term.n_exp == 1 and term.log_exp == 1

    def test_atom_exponents(self):
        (term,) = b("O(k^2)").terms
        assert term.atoms == (("k", 2),)
        (term,) = b("O(k^k)").terms
        assert term.atoms == (("k^k", 1),)

    def test_division_and_sqrt(self):
        (term,) = b("O(n / log n)").terms
        assert term.n_exp == 1 and term.log_exp == -1
        (term,) = b("O(sqrt(n))").terms
        assert term.n_exp == 0.5

    def test_dominated_terms_pruned(self):
        assert b("O(n + n log n)") == b("O(n log n)")
        assert b("O(1 + log n + log^2 n)") == b("O(log^2 n)")

    def test_incomparable_terms_kept(self):
        bound = b("O(n log n + c_k p)")
        assert len(bound.terms) == 2

    def test_parse_errors(self):
        for bad in ("", "O(n", "O(n))", "O(n ^ x + )", "O(n / k)"):
            with pytest.raises(BoundParseError):
                parse_bound(bad)


class TestOrdering:
    def test_leq_on_exponents(self):
        assert b("O(n)").leq(b("O(n log n)"))
        assert b("O(log^2 n)").leq(b("O(n)"))
        assert not b("O(n)").leq(b("O(log^5 n)"))
        assert not b("O(n^2)").leq(b("O(n log n)"))

    def test_atoms_incomparable_with_n(self):
        # k might be Theta(n): a k-term is never dominated by pure n-terms.
        assert not b("O(k)").leq(b("O(n)"))
        # ...but dropping an atom factor >= 1 only shrinks a term.
        assert b("O(n)").leq(b("O(k n)"))
        assert b("O(c_k)").leq(b("O(c_k p)"))

    def test_excess_blames_the_right_term(self):
        excess = b("O(n + c_k p)").excess(b("O(n log n)"))
        assert excess is not None and excess.atoms == (
            ("c_k", 1), ("p", 1),
        )
        assert b("O(n)").excess(b("O(n log n)")) is None

    def test_zero_is_bottom(self):
        assert Bound.zero().leq(b("O(1)"))
        assert not b("O(1)").leq(Bound.zero())


class TestAlgebra:
    def test_plus_is_union(self):
        assert b("O(n)").plus(b("O(log n)")) == b("O(n)")
        assert b("O(n)").plus(b("O(c_k)")) == b("O(n + c_k)")

    def test_times_multiplies_every_term(self):
        n = Term(n_exp=1.0)
        assert b("O(log n + c_k)").times(n) == b("O(n log n + c_k n)")

    def test_par_bound_is_max(self):
        assert par_bound([b("O(log n)"), b("O(log^2 n)")]) == b("O(log^2 n)")

    def test_provenance_survives_times_and_is_ignored_by_eq(self):
        t = Term(n_exp=1.0, provenance=17)
        assert t == Term(n_exp=1.0)
        assert Bound.of(t).times(Term(log_exp=1.0), 42).terms[0].provenance \
            == 42
