"""Baseline ratchet, noqa edge cases, SARIF output, and file discovery."""

import json
from pathlib import Path

from repro.analysis import (
    Baseline,
    apply_baseline,
    lint_paths,
    lint_source,
    render_sarif,
)
from repro.analysis import run as lint_run

PURITY_HEADER = "import numpy as np\nimport time\n"


def _purity_source(noqa_rng="", noqa_clock=""):
    return (
        PURITY_HEADER
        + "@task_pure\n"
        + "def run(piece, seed):\n"
        + f"    rng = np.random.default_rng(){noqa_rng}\n"
        + f"    t0 = time.perf_counter(){noqa_clock}\n"
        + "    return rng, t0\n"
    )


class TestNoqaEdgeCases:
    def test_multiple_rules_one_line(self):
        source = (
            PURITY_HEADER
            + "@task_pure\n"
            + "def run(piece):\n"
            + "    x = np.random.default_rng() if time.time() else None"
            + "  # repro: noqa[RPR031, RPR032]\n"
            + "    return x\n"
        )
        assert lint_source(source, traced=True, rules=()) == []
        # Suppressing only one of the two leaves the other.
        partial = source.replace("[RPR031, RPR032]", "[RPR031]")
        findings = lint_source(partial, traced=True, rules=())
        assert [f.rule for f in findings] == ["RPR032"]

    def test_noqa_on_decorator_line(self):
        source = (
            '@cost_contract(work="O(n log n", depth="O(1)")'
            "  # repro: noqa[RPR012]\n"
            "def f(n):\n"
            "    return n\n"
        )
        assert lint_source(source, traced=True, rules=()) == []
        unsuppressed = source.replace("  # repro: noqa[RPR012]", "")
        findings = lint_source(unsuppressed, traced=True, rules=())
        assert [f.rule for f in findings] == ["RPR012"]

    def test_noqa_and_baseline_do_not_double_count(self, tmp_path):
        # One finding noqa'd in place + one identical finding baselined:
        # the noqa'd one must never consume the baseline slot.
        source = _purity_source(noqa_rng="", noqa_clock="")
        source += (
            "@task_pure\n"
            "def run2(piece):\n"
            "    return np.random.default_rng()"
            "  # repro: noqa[RPR031]\n"
        )
        path = tmp_path / "mod.py"
        path.write_text(source, encoding="utf-8")
        findings = lint_paths([str(path)])
        # noqa already filtered: one RPR031 (run) + one RPR032 (run).
        assert sorted(f.rule for f in findings) == ["RPR031", "RPR032"]
        baseline = Baseline.from_findings(findings, tmp_path)
        result = apply_baseline(findings, baseline, tmp_path)
        assert result.new == []
        assert len(result.suppressed) == 2
        assert result.stale == []


class TestBaselineRatchet:
    def _findings(self, tmp_path, source):
        path = tmp_path / "mod.py"
        path.write_text(source, encoding="utf-8")
        return path, lint_paths([str(path)])

    def test_new_findings_not_absorbed(self, tmp_path):
        path, findings = self._findings(tmp_path, _purity_source())
        baseline = Baseline.from_findings(findings[:1], tmp_path)
        result = apply_baseline(findings, baseline, tmp_path)
        assert len(result.suppressed) == 1
        assert len(result.new) == 1
        assert result.new[0].rule != result.suppressed[0].rule

    def test_fixed_findings_become_stale(self, tmp_path):
        path, findings = self._findings(tmp_path, _purity_source())
        baseline = Baseline.from_findings(findings, tmp_path)
        fixed = [f for f in findings if f.rule != "RPR032"]
        result = apply_baseline(fixed, baseline, tmp_path)
        assert result.new == []
        ((key, expected, actual),) = result.stale
        assert key[0] == "RPR032" and expected == 1 and actual == 0

    def test_save_load_round_trip(self, tmp_path):
        path, findings = self._findings(tmp_path, _purity_source())
        baseline = Baseline.from_findings(findings, tmp_path)
        target = tmp_path / "baseline.json"
        baseline.save(target)
        loaded = Baseline.load(target)
        assert loaded.entries == baseline.entries
        data = json.loads(target.read_text(encoding="utf-8"))
        assert data["version"] == 1
        assert all(e["symbol"].endswith("run") for e in data["entries"])

    def test_run_exit_codes_and_ratchet(self, tmp_path, capsys):
        path = tmp_path / "mod.py"
        path.write_text(_purity_source(), encoding="utf-8")
        baseline_path = tmp_path / "baseline.json"
        # 1. Dirty tree, no baseline: fail.
        assert lint_run(
            [str(path)], baseline=str(baseline_path)
        ) == 1
        # 2. Write the baseline, rerun: clean.
        assert lint_run(
            [str(path)], baseline=str(baseline_path), write_baseline=True
        ) == 0
        assert lint_run([str(path)], baseline=str(baseline_path)) == 0
        # 3. Fix one finding: plain run stays green (debt only shrank)...
        path.write_text(
            _purity_source(noqa_clock="  # repro: noqa[RPR032]"),
            encoding="utf-8",
        )
        assert lint_run([str(path)], baseline=str(baseline_path)) == 0
        # ...but --ratchet demands the stale entry be dropped.
        assert lint_run(
            [str(path)], baseline=str(baseline_path), ratchet=True
        ) == 1
        out = capsys.readouterr().out
        assert "stale baseline entry" in out

    def test_no_baseline_flag_ignores_committed_debt(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(_purity_source(), encoding="utf-8")
        baseline_path = tmp_path / "baseline.json"
        lint_run(
            [str(path)], baseline=str(baseline_path), write_baseline=True
        )
        assert lint_run(
            [str(path)], baseline=str(baseline_path), no_baseline=True
        ) == 1


class TestSarif:
    def test_sarif_shape_and_paths(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(_purity_source(), encoding="utf-8")
        findings = lint_paths([str(path)])
        log = json.loads(render_sarif(findings, tmp_path))
        assert log["version"] == "2.1.0"
        (run,) = log["runs"]
        rules = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert rules == {"RPR031", "RPR032"}
        for result in run["results"]:
            loc = result["locations"][0]["physicalLocation"]
            assert loc["artifactLocation"]["uri"] == "mod.py"
            assert loc["region"]["startLine"] >= 1
            assert result["ruleId"] in rules

    def test_cli_run_emits_sarif_file(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(_purity_source(), encoding="utf-8")
        out = tmp_path / "lint.sarif"
        code = lint_run(
            [str(path)], format="sarif", output=str(out),
            no_baseline=True,
        )
        assert code == 1
        log = json.loads(out.read_text(encoding="utf-8"))
        assert log["runs"][0]["results"]


class TestDiscovery:
    def test_gitignored_and_pycache_skipped(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("", encoding="utf-8")
        (tmp_path / ".gitignore").write_text(
            "build/\n*.egg-info\n", encoding="utf-8"
        )
        bad = "import random\n"
        (tmp_path / "a.py").write_text(bad, encoding="utf-8")
        for skipped in ("build", "__pycache__", ".hidden"):
            sub = tmp_path / skipped
            sub.mkdir()
            (sub / "b.py").write_text(bad, encoding="utf-8")
        findings = lint_paths([str(tmp_path)])
        assert {Path(f.path).name for f in findings} == {"a.py"}
        assert [f.rule for f in findings] == ["RPR003"]
