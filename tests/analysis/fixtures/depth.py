"""RPR002 fixture: sequential loops under polylog-depth docstrings."""


def bad_for_loop(graph):
    """Computes something in O(log n) depth (it claims)."""
    total = 0
    for v in range(graph.n):  # MARK: bad-for-loop
        total += v
    return total


def bad_while_loop(graph):
    """Polylogarithmic depth frontier sweep (it claims)."""
    v = 0
    while v < graph.n:  # MARK: bad-while-loop
        v += 1
    return v


def ok_parallel_idiom(graph, tracker):
    """Branches in O(log n) depth; the loop only enumerates branches."""
    with tracker.parallel() as region:
        for v in range(graph.n):
            with region.branch() as branch:
                branch.charge(None)


def ok_no_depth_claim(graph):
    """Plain sequential helper; makes no depth promise."""
    total = 0
    for v in range(graph.n):
        total += v
    return total


def ok_small_loop(pieces):
    """Merges a few pieces in O(log n) depth."""
    out = []
    for piece in pieces:
        out.append(piece)
    return out


def ok_charged_span_loop(graph, tracer):
    """Bucket pass in O(log n) depth; the loop is a simulation artifact."""
    total = 0
    with tracer.span("bucket-pass"):
        tracer.charge(Cost(graph.n, 1))
        for v in range(graph.n):
            total += v
    return total


def ok_charged_step_span(graph, tracer):
    """Scatter in O(log n) depth, charged as one constant-depth step."""
    with tracer.span("scatter"):
        tracer.charge(Cost.step(graph.n))
        for v in range(graph.n):
            pass


def bad_nonconst_depth_span(graph, tracer):
    """Sweep in O(log n) depth (it claims); the span charge admits O(n)."""
    with tracer.span("sweep"):
        tracer.charge(Cost(graph.n, graph.n))
        for v in range(graph.n):  # MARK: bad-span-loop
            pass


def suppressed(graph):
    """Runs in O(log n) depth; iterations are address-calculation only."""
    for v in range(graph.n):  # repro: noqa[RPR002] -- fixture: intentional
        pass
