"""RPR020-RPR022 fixture: static CREW write-set discipline.

Every ``bad_*`` function violates the record_writes obligation in one
specific way; every ``ok_*`` function follows an idiom the pass must
accept (declared writes, arm-private scratch, list-typed scratch).
"""

import numpy as np


def helper_writes(out, idx):
    out[idx] = 1


def bad_undeclared(graph, tracker):
    results = np.zeros(graph.n)
    with tracker.parallel("pieces") as region:
        for i in range(graph.n):
            with region.branch("piece") as branch:
                branch.charge(None)
                results[i] = i  # MARK: bad-undeclared


def bad_overlap(graph, tracker):
    out = np.zeros(graph.n)
    with tracker.parallel("pair") as region:
        with region.branch("left") as branch:
            branch.charge(None)
            branch.record_writes(out, 0)
            out[0] = 1
        with region.branch("right") as branch:
            branch.charge(None)
            branch.record_writes(out, 0)
            out[0] = 2  # MARK: bad-overlap


def bad_loop_invariant(graph, tracker):
    acc = np.zeros(4)
    with tracker.parallel("reduce") as region:
        for i in range(graph.n):
            with region.branch("arm") as branch:
                branch.charge(None)
                branch.record_writes(acc, 0)
                acc[0] = i  # MARK: bad-loop-invariant


def bad_escape(graph, tracker):
    shared = np.zeros(graph.n)
    with tracker.parallel("escape") as region:
        with region.branch("delegate") as branch:
            branch.charge(None)
            helper_writes(shared, 3)  # MARK: bad-escape


def ok_declared(graph, tracker):
    out = np.zeros(graph.n)
    with tracker.parallel("pieces") as region:
        for i in range(graph.n):
            with region.branch("piece") as branch:
                branch.charge(None)
                branch.record_writes(out, i)
                out[i] = i


def ok_arm_private(graph, tracker):
    with tracker.parallel("scratchpads") as region:
        with region.branch("scratch") as branch:
            branch.charge(None)
            local = np.zeros(4)
            local[0] = 1


def ok_list_scratch(graph, tracker):
    table = [None] * graph.n
    with tracker.parallel("tables") as region:
        for i in range(graph.n):
            with region.branch("slot") as branch:
                branch.charge(None)
                table[i] = i
