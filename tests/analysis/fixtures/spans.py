"""RPR004 fixture: Tracer spans outside ``with`` statements."""

from contextlib import ExitStack

from repro.pram import Cost, Tracer


def bad_bare_span(tracker):
    span = tracker.span("leaky")  # MARK: bad-bare-span
    return span


def bad_bare_parallel(tracker):
    region = tracker.parallel()  # MARK: bad-bare-parallel
    return region


def ok_with_span(tracker):
    with tracker.span("scoped"):
        tracker.charge(Cost.step(1))


def ok_with_branch(tracker):
    with tracker.parallel() as region:
        with region.branch() as branch:
            branch.charge(Cost.step(1))


def ok_exit_stack(tracker):
    with ExitStack() as stack:
        stack.enter_context(tracker.span("managed"))
        tracker.charge(Cost.step(1))


def suppressed(tracker):
    s = tracker.span("x")  # repro: noqa[RPR004] -- fixture: intentional
    return s
