"""RPR001 fixture: uncharged NumPy work in cost-aware functions.

Never imported — read as text by test_lint.py (``MARK:`` comments anchor
the expected finding lines).
"""

import numpy as np

from repro.pram import Cost, Tracer, prefix_sum


def bad_tracer_param(graph, tracer):  # MARK: bad-tracer-param
    """NumPy work with a tracer in scope and no charge."""
    return np.cumsum(graph.deg)


def bad_builds_tracker(graph):  # MARK: bad-builds-tracker
    tracker = Tracer("run")
    out = np.zeros(graph.n)
    return tracker, out


def ok_charges(graph, tracer):
    out = np.cumsum(graph.deg)
    tracer.charge(Cost.step(graph.n))
    return out


def ok_uses_primitive(values, tracer):
    sums, _ = prefix_sum(np.asarray(values), tracer=tracer)
    return sums


def ok_forwards_tracer(graph, tracer):
    return np.sort(helper(graph, tracer=tracer))


def ok_leaf_helper(graph):
    """No tracer in scope: charged at call sites, out of RPR001 scope."""
    return np.flatnonzero(graph.deg)


def suppressed(graph, tracer):  # repro: noqa[RPR001] -- fixture: intentional
    return np.cumsum(graph.deg)


def helper(graph, tracer=None):
    return graph.deg
