"""RPR030-RPR032 fixture: task-purity of remote-shippable entry points.

``bad_task`` is a ``@task_pure`` root that commits all three sins; the
reachable ``_tainted_helper`` shows violations propagate through the call
graph.  ``ok_task`` threads its seed and touches nothing ambient.
"""

import time

import numpy as np

_MEMO = {}


def _remember(key, value):
    _MEMO[key] = value
    return value


@task_pure
def bad_task(piece, seed):
    rng = np.random.default_rng()  # MARK: bad-rng
    started = time.perf_counter()  # MARK: bad-clock
    cached = _MEMO.get(piece)  # MARK: bad-global
    return _tainted_helper(piece), cached, rng, started


def _tainted_helper(piece):
    handle = open("/tmp/piece.bin", "rb")  # MARK: bad-open
    return handle


@task_pure
def ok_task(piece, seed):
    rng = np.random.default_rng(seed)
    return float(rng.random()) + float(np.sum(piece))


def unreachable_impurity():
    return time.monotonic()
