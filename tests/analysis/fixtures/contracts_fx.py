"""RPR010-RPR013 fixture: cost contracts checked against bodies.

Only parsed, never imported — the decorators are matched by name in the
AST, so no imports are needed for the analyzer to see them.
"""


@cost_contract(work="O(n)", depth="O(log n)")
def ok_scan(values, n, tracer):
    """Charges exactly what it declares."""
    tracer.charge(Cost.scan(n))
    return values


@cost_contract(work="O(log n)", depth="O(log n)")
def bad_work(values, n, tracer):
    """Declares sublinear work but charges a linear step."""
    tracer.charge(Cost.step(n))  # MARK: bad-work
    return values


@cost_contract(work="O(n)", depth="O(log n)")
def bad_depth(values, n, tracer):
    """The contract says log-depth; the body chains n sequential steps."""
    for i in range(n):  # MARK: bad-depth
        tracer.charge(Cost.step(1))
    return values


@cost_contract(work="O(n log n", depth="O(1)")  # MARK: bad-bound
def bad_bound(n):
    return n


@cost_contract("O(n)", depth="O(1)")  # MARK: bad-positional
def bad_positional(n):
    return n


def helper_without_contract(values, tracer):
    tracer.charge(Cost.step(1))
    return values


@cost_contract(work="O(n)", depth="O(log n)")
def bad_forwarding(values, n, tracer):
    """Hands its tracer to an uncontracted callee: composition hole."""
    tracer.charge(Cost.scan(n))
    return helper_without_contract(values, tracer)  # MARK: bad-forward


@cost_contract(work="O(n)", depth="O(log n)")
def ok_composed(values, n, tracer):
    """Composes a contracted callee; inherits its bound."""
    return ok_scan(values, n, tracer)
