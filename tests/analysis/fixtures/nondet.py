"""RPR003 fixture: global-state randomness vs seeded Generators."""

import random  # MARK: bad-import-random

import numpy as np


def bad_legacy_numpy():
    return np.random.rand(3)  # MARK: bad-legacy-numpy


def bad_global_seed():
    np.random.seed(0)  # MARK: bad-global-seed


def bad_stdlib():
    return random.random()


def ok_seeded(seed):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 10, size=4)


def ok_generator_type(rng: np.random.Generator):
    return rng.random()


def suppressed():
    return np.random.rand(1)  # repro: noqa[RPR003] -- fixture: intentional
