"""Static CREW write-set inference (RPR020-RPR022)."""

from repro.analysis import build_project, region_reports
from repro.analysis.dataflow import (
    build_frame,
    collect_writes,
    param_write_summaries,
)
from repro.analysis.linter import _build_context

from .test_lint import line_of, lint_fixture


def ctx_of(source, path="src/repro/isomorphism/fx.py"):
    built, syntax_error = _build_context(source, path, True)
    assert syntax_error is None, syntax_error
    return built


class TestFixtureFindings:
    def test_exact_findings(self):
        path, findings = lint_fixture("crew_fx.py")
        got = [(f.rule, f.line) for f in findings]
        assert got == sorted(
            [
                ("RPR020", line_of(path, "bad-undeclared")),
                ("RPR021", line_of(path, "bad-overlap")),
                ("RPR021", line_of(path, "bad-loop-invariant")),
                ("RPR022", line_of(path, "bad-escape")),
            ],
            key=lambda pair: (pair[1], pair[0]),
        )

    def test_ok_variants_not_flagged(self):
        _, findings = lint_fixture("crew_fx.py")
        messages = " ".join(f.message for f in findings)
        for ok in ("ok_declared", "ok_arm_private", "ok_list_scratch"):
            assert ok not in messages


class TestDataflow:
    SOURCE = (
        "import numpy as np\n"
        "from repro.pram.sanitize import ShadowArray\n"
        "\n"
        "def writer(out, idx):\n"
        "    out[idx] = 1\n"
        "\n"
        "def flow(n):\n"
        "    table = np.zeros(n)\n"
        "    view = table.reshape(-1)\n"
        "    alias = view\n"
        "    fresh = table.copy()\n"
        "    cells = ShadowArray('piece-cells', n)\n"
        "    scratch = [0] * n\n"
        "    alias[0] = 1\n"
        "    fresh[1] = 2\n"
        "    cells[2] = 3\n"
        "    scratch[3] = 4\n"
        "    writer(table, 4)\n"
    )

    def test_alias_chain_resolves_to_root(self):
        built = ctx_of(self.SOURCE)
        func = built.tree.body[-1]
        frame = build_frame(func)
        assert frame.resolve("alias") == "table"
        assert frame.resolve("view") == "table"
        assert frame.resolve("fresh") == "fresh"  # copy() severs aliasing
        assert frame.resolve("scratch") is None  # lists never classified
        assert frame.shadow_labels["cells"] == "piece-cells"

    def test_collect_writes_direct_and_via_call(self):
        built = ctx_of(self.SOURCE)
        proj = build_project([built])
        info = proj.functions["isomorphism.fx.flow"]
        frame = build_frame(info.node)
        summaries = param_write_summaries(proj)
        sites = collect_writes(
            info.node.body, frame,
            project=proj, info=info, summaries=summaries,
        )
        by_root = {}
        for site in sites:
            by_root.setdefault(site.root, set()).add(site.via_call)
        assert None in by_root["table"]  # alias[0] = 1
        assert "isomorphism.fx.writer" in by_root["table"]  # escaped
        assert None in by_root["fresh"]
        assert None in by_root["cells"]
        assert "scratch" not in by_root

    def test_param_summaries_reach_fixpoint_through_wrappers(self):
        source = (
            "def inner(out):\n"
            "    out[0] = 1\n"
            "\n"
            "def middle(buffer):\n"
            "    inner(buffer)\n"
            "\n"
            "def outer(target):\n"
            "    middle(target)\n"
        )
        proj = build_project([ctx_of(source)])
        summaries = param_write_summaries(proj)
        assert summaries["isomorphism.fx.inner"] == {"out"}
        assert summaries["isomorphism.fx.middle"] == {"buffer"}
        assert summaries["isomorphism.fx.outer"] == {"target"}


class TestRegionReports:
    def test_reports_expose_declarations_and_labels(self):
        source = (
            "import numpy as np\n"
            "from repro.pram.sanitize import ShadowArray\n"
            "\n"
            "def drive(graph, tracker):\n"
            "    results = ShadowArray('piece-results', graph.n)\n"
            "    with tracker.parallel('pieces') as region:\n"
            "        for i in range(graph.n):\n"
            "            with region.branch('piece') as branch:\n"
            "                branch.charge(None)\n"
            "                branch.record_writes(results, i)\n"
            "                results[i] = i\n"
        )
        built = ctx_of(source)
        proj = build_project([built])
        info = proj.functions["isomorphism.fx.drive"]
        (report,) = region_reports(proj, info)
        assert report.region_name == "pieces"
        assert report.declared_roots == {"results"}
        assert report.shadow_labels == {"results": "piece-results"}
        (arm,) = report.arms
        assert arm.spawned_in_loop
        assert {w.root for w in arm.writes} == {"results"}
