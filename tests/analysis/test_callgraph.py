"""The call-graph substrate shared by the interprocedural passes."""

from repro.analysis import build_project, enclosing_symbol
from repro.analysis.linter import _build_context


def ctx(source, path):
    built, syntax_error = _build_context(source, path, True)
    assert syntax_error is None, syntax_error
    return built


PRIMS = ctx(
    "def prefix_sum(values, tracer):\n"
    "    return values\n"
    "\n"
    "def pack(values, keep, tracer):\n"
    "    return prefix_sum(values, tracer)\n",
    "src/repro/pram/primitives.py",
)

PRAM_INIT = ctx(
    "from .primitives import pack, prefix_sum\n",
    "src/repro/pram/__init__.py",
)

DRIVER = ctx(
    "from ..pram import pack\n"
    "from ..pram.primitives import prefix_sum as scan\n"
    "\n"
    "class Engine:\n"
    "    def __init__(self, n):\n"
    "        self.n = n\n"
    "\n"
    "    def solve(self, values, tracer):\n"
    "        return self.merge(pack(values, values, tracer))\n"
    "\n"
    "    def merge(self, values):\n"
    "        return values\n"
    "\n"
    "def drive(values, tracer):\n"
    "    engine = Engine(len(values))\n"
    "    total = scan(values, tracer)\n"
    "    return engine.solve(total, tracer)\n",
    "src/repro/isomorphism/driver.py",
)


def project():
    return build_project([PRIMS, PRAM_INIT, DRIVER])


class TestResolution:
    def test_module_local_call(self):
        proj = project()
        info = proj.functions["pram.primitives.pack"]
        callees = {s.callee for s in proj.calls(info)}
        assert "pram.primitives.prefix_sum" in callees

    def test_relative_import_with_alias(self):
        proj = project()
        info = proj.functions["isomorphism.driver.drive"]
        callees = {s.callee for s in proj.calls(info)}
        assert "pram.primitives.prefix_sum" in callees  # via `as scan`

    def test_package_reexport_chases_init(self):
        proj = project()
        info = proj.functions["isomorphism.driver.Engine.solve"]
        callees = {s.callee for s in proj.calls(info)}
        assert "pram.primitives.pack" in callees  # from ..pram import pack

    def test_self_method(self):
        proj = project()
        info = proj.functions["isomorphism.driver.Engine.solve"]
        callees = {s.callee for s in proj.calls(info)}
        assert "isomorphism.driver.Engine.merge" in callees

    def test_class_call_credits_init(self):
        proj = project()
        info = proj.functions["isomorphism.driver.drive"]
        callees = {s.callee for s in proj.calls(info)}
        assert "isomorphism.driver.Engine.__init__" in callees

    def test_unknown_callee_is_none(self):
        proj = project()
        info = proj.functions["isomorphism.driver.drive"]
        dotted = {s.dotted: s.callee for s in proj.calls(info)}
        assert dotted["len"] is None  # builtin: unresolved, not guessed


class TestReachability:
    def test_bfs_closure(self):
        proj = project()
        seen = proj.reachable(["isomorphism.driver.drive"])
        assert "pram.primitives.prefix_sum" in seen
        assert "isomorphism.driver.Engine.__init__" in seen
        assert seen[0] == "isomorphism.driver.drive"
        # Instance calls through a local variable stay unresolved (best
        # effort by construction) — but self-calls do resolve:
        via_solve = proj.reachable(["isomorphism.driver.Engine.solve"])
        assert "isomorphism.driver.Engine.merge" in via_solve

    def test_unknown_roots_ignored(self):
        assert project().reachable(["no.such.function"]) == []


class TestEnclosingSymbol:
    def test_nested_and_method_lines(self):
        source = (
            "def outer():\n"            # 1
            "    def inner():\n"        # 2
            "        return 1\n"        # 3
            "    return inner\n"        # 4
            "\n"                        # 5
            "class Box:\n"              # 6
            "    @staticmethod\n"       # 7
            "    def get():\n"          # 8
            "        return 2\n"        # 9
            "\n"                        # 10
            "TOP = 3\n"                 # 11
        )
        built = ctx(source, "src/repro/pram/box.py")
        assert enclosing_symbol(built, 3) == "pram.box.outer.inner"
        assert enclosing_symbol(built, 4) == "pram.box.outer"
        # Decorator lines belong to the decorated function.
        assert enclosing_symbol(built, 7) == "pram.box.Box.get"
        assert enclosing_symbol(built, 9) == "pram.box.Box.get"
        assert enclosing_symbol(built, 11) == ""
