"""End-to-end daemon tests: real sockets against an ephemeral port.

Covers the tentpole's observable contract — verdict parity with the
library drivers, request coalescing (one cold build, N responses), LRU
eviction under a small byte budget, the strict ``/metrics`` exposition,
HTTP error mapping, and a SIGTERM drain of the real ``python -m repro
serve`` subprocess with zero leaked shared-memory segments.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro import cli
from repro.engine.session import TargetSession
from repro.serve.metrics import parse_prometheus_text
from repro.serve.pool import SessionPool

from .conftest import request, running_server


def test_healthz_on_ephemeral_port(server):
    assert server.port != 0
    status, body = request(server.port, "GET", "/healthz")
    assert status == 200
    assert body == {"status": "ok", "sessions": 0, "inflight": 0}


def test_decide_matches_direct_driver(server):
    status, body = request(
        server.port,
        "POST",
        "/v1/decide",
        {"target": "grid:8x8", "pattern": "cycle:4", "seed": 3},
    )
    assert status == 200

    graph, embedding = cli.parse_target("grid:8x8")
    session = TargetSession(graph, embedding)
    direct = session.find_occurrence(
        cli.parse_pattern("cycle:4"), seed=3, plan="auto"
    )
    assert body["found"] is direct.found
    assert body["rounds_used"] == direct.rounds_used
    assert body["witness"] == {
        str(k): int(v) for k, v in sorted(direct.witness.items())
    }
    assert body["cost"] == {
        "work": direct.cost.work, "depth": direct.cost.depth
    }


def test_count_list_connectivity_parity(server):
    graph, embedding = cli.parse_target("grid:5x5")
    session = TargetSession(graph, embedding)

    status, body = request(
        server.port, "POST", "/v1/count",
        {"target": "grid:5x5", "pattern": "cycle:4"},
    )
    direct = session.count_exact(cli.parse_pattern("cycle:4"), plan="auto")
    assert status == 200
    assert body["isomorphisms"] == direct.isomorphisms

    status, body = request(
        server.port, "POST", "/v1/list",
        {"target": "grid:5x5", "pattern": "cycle:4", "seed": 1},
    )
    direct = session.list_occurrences(
        cli.parse_pattern("cycle:4"), seed=1, plan="auto"
    )
    assert status == 200
    assert body["occurrences"] == sorted(
        sorted(int(v) for v in occ) for occ in direct.occurrences
    )

    status, body = request(
        server.port, "POST", "/v1/connectivity", {"target": "wheel:6"}
    )
    assert status == 200
    assert body["connectivity"] == 3


def test_second_query_is_amortized_and_explain_echoes_plan(server):
    payload = {"target": "grid:6x6", "pattern": "cycle:4"}
    status, cold = request(server.port, "POST", "/v1/decide", payload)
    assert status == 200
    assert cold["amortized"] is False
    assert "plan" not in cold

    status, warm = request(
        server.port, "POST", "/v1/decide",
        {**payload, "seed": 1, "explain": True},
    )
    assert status == 200
    assert warm["amortized"] is True
    assert warm["plan"]["mode"] == "witness"
    assert isinstance(warm["explain"], str) and warm["explain"]


def test_batch_dedups_and_reports_sharing(server):
    status, body = request(
        server.port, "POST", "/v1/batch",
        {
            "target": "grid:6x6",
            "patterns": ["cycle:4", "path:3", "cycle:4"],
        },
    )
    assert status == 200
    assert body["queries"] == 3
    assert body["deduped_queries"] == 1
    assert [r["pattern"] for r in body["results"]] == [
        "cycle:4", "path:3", "cycle:4"
    ]
    assert body["results"][0]["found"] == body["results"][2]["found"]


def test_coalescing_one_cold_build_n_responses():
    with running_server() as server:
        n = 4
        barrier = threading.Barrier(n)
        results = [None] * n

        def fire(i):
            barrier.wait()
            results[i] = request(
                server.port, "POST", "/v1/decide",
                {"target": "grid:16x16", "pattern": "cycle:6"},
            )

        threads = [
            threading.Thread(target=fire, args=(i,)) for i in range(n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(120)
        statuses = {status for status, _ in results}
        assert statuses == {200}
        bodies = [json.dumps(body, sort_keys=True) for _, body in results]
        assert len(set(bodies)) == 1  # one execution, shared verbatim
        assert server.pool.session_builds == 1
        assert server.coalesced_total == n - 1
        assert results[0][1]["found"] is True


def test_lru_eviction_under_small_budget_shows_in_metrics():
    # ~1 MiB holds one warm session's artifacts but not three.
    with running_server(pool=SessionPool(max_bytes=1 << 20)) as server:
        for spec in ("grid:6x6", "grid:7x7", "grid:8x8"):
            status, _ = request(
                server.port, "POST", "/v1/decide",
                {"target": spec, "pattern": "cycle:4"},
            )
            assert status == 200
        status, text = request(server.port, "GET", "/metrics")
        assert status == 200
        families = parse_prometheus_text(text)
        resident = families["repro_pool_sessions_resident"][0][1]
        evicted = families["repro_pool_sessions_evicted_total"][0][1]
        assert resident < 3
        assert evicted >= 1
        assert resident + evicted == 3
        assert families["repro_pool_evicted_artifacts_total"][0][1] > 0


def test_metrics_exposition_is_strict_and_labeled(server):
    for spec in ("grid:5x5", "grid:6x6"):
        request(
            server.port, "POST", "/v1/decide",
            {"target": spec, "pattern": "cycle:4"},
        )
    status, text = request(server.port, "GET", "/metrics")
    assert status == 200
    families = parse_prometheus_text(text)  # would raise on any dup
    # Per-session cache families carry a session label per resident
    # session under ONE header pair (the satellite-3 exposition shape).
    misses = families["repro_cache_misses_total"]
    sessions = {labels["session"] for labels, _ in misses}
    assert len(sessions) == 2
    assert all(len(s) == 12 for s in sessions)
    assert families["repro_pool_sessions_resident"][0][1] == 2
    routes = {
        labels["route"]: value
        for labels, value in families["repro_server_requests_total"]
    }
    assert routes["decide"] == 2
    assert families["repro_server_draining"][0][1] == 0


def test_http_error_mapping(server):
    status, body = request(server.port, "GET", "/v1/nope")
    assert status == 404
    status, body = request(server.port, "GET", "/v1/decide")
    assert status == 405
    conn_status, body = request(
        server.port, "POST", "/v1/decide", {"target": "grid:4x4"}
    )
    assert conn_status == 400
    assert body["error"]["code"] == "bad-request"
    assert "pattern" in body["error"]["message"]
    status, body = request(
        server.port, "POST", "/v1/decide",
        {"target": "nope:3", "pattern": "cycle:4"},
    )
    assert status == 400
    assert "nope" in body["error"]["message"]


@pytest.mark.slow
def test_sigterm_drains_and_leaks_no_shm_segments(tmp_path):
    """The real subprocess: SIGTERM mid-request → in-flight completes,
    clean exit, and /dev/shm gains nothing (processes backend)."""
    shm_dir = "/dev/shm"
    before = set(os.listdir(shm_dir)) if os.path.isdir(shm_dir) else None
    env = dict(os.environ, PYTHONPATH="src")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--backend", "processes", "--processors", "2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
    )
    try:
        line = proc.stdout.readline()
        assert "repro serve: listening on" in line, line
        port = int(line.split(" (")[0].rsplit(":", 1)[1])

        outcome = {}

        def fire():
            outcome["response"] = request(
                port, "POST", "/v1/decide",
                {"target": "grid:16x16", "pattern": "cycle:6"},
                timeout=180,
            )

        thread = threading.Thread(target=fire)
        thread.start()
        time.sleep(0.3)  # let the request reach the executor
        proc.send_signal(signal.SIGTERM)
        thread.join(180)
        assert not thread.is_alive()
        status, body = outcome["response"]
        assert status == 200
        assert body["found"] is True

        proc.wait(timeout=120)
        assert proc.returncode == 0
        assert "drained and stopped" in proc.stderr.read()
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    if before is not None:
        leaked = set(os.listdir(shm_dir)) - before
        assert not leaked, f"leaked shm segments: {leaked}"
