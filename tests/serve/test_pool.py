"""SessionPool unit tests: sizing, fingerprint keying, LRU eviction and
its artifact accounting (the eviction counters satellite 1 fixed must
surface through the pool).
"""

import numpy as np

from repro import cli
from repro.serve.pool import SessionPool, estimate_nbytes


def _run_query(pooled, pattern="cycle:4"):
    graph = cli.parse_pattern(pattern)
    with pooled.lock:
        result = pooled.session.find_occurrence(graph, seed=0, plan="auto")
    return result


def test_estimate_nbytes_counts_arrays_once():
    arr = np.zeros(1024, dtype=np.int64)
    assert estimate_nbytes(arr) >= arr.nbytes
    # Identity-level dedup: the same buffer reachable twice costs once.
    single = estimate_nbytes({"a": arr})
    double = estimate_nbytes({"a": arr, "b": arr})
    assert double < 2 * single
    assert estimate_nbytes([arr, {"x": (1, 2.5, "s")}]) >= arr.nbytes


def test_acquire_is_keyed_by_fingerprint_not_spec():
    pool = SessionPool(max_bytes=1 << 30)
    a = pool.acquire("grid:4x4")
    b = pool.acquire("grid:4x4")
    assert a is b
    assert pool.session_builds == 1
    assert pool.session_hits == 1
    assert len(pool) == 1
    assert a.fingerprint in pool


def test_touch_refreshes_size_and_marks_mru():
    pool = SessionPool(max_bytes=1 << 30)
    a = pool.acquire("grid:4x4")
    b = pool.acquire("grid:5x5")
    assert a.nbytes == 0
    _run_query(a)
    pool.touch(a)
    assert a.nbytes > 0
    assert pool.bytes_resident() >= a.nbytes
    # a was touched last, so b is now least-recently-used.
    assert pool.resident()[0] is b
    assert pool.resident()[-1] is a


def test_lru_eviction_under_tiny_budget():
    # A 1-byte budget means every touch evicts everything except the
    # session that just answered — the deterministic worst case.
    pool = SessionPool(max_bytes=1)
    a = pool.acquire("grid:4x4")
    _run_query(a)
    pool.touch(a)
    assert len(pool) == 1  # the in-use session is never evicted

    b = pool.acquire("grid:5x5")
    _run_query(b)
    pool.touch(b)
    assert len(pool) == 1
    assert b.fingerprint in pool
    assert a.fingerprint not in pool
    assert pool.sessions_evicted == 1
    # Eviction went through TargetSession.invalidate, so the dropped
    # artifacts were counted (satellite 1's accounting fix).
    assert pool.artifacts_evicted > 0

    # The spec memo was purged with the session: re-acquiring rebuilds.
    builds = pool.session_builds
    a2 = pool.acquire("grid:4x4")
    assert a2 is not a
    assert pool.session_builds == builds + 1


def test_eviction_skips_locked_sessions():
    pool = SessionPool(max_bytes=1)
    a = pool.acquire("grid:4x4")
    _run_query(a)
    b = pool.acquire("grid:5x5")
    _run_query(b)
    with a.lock:  # a is mid-query on another thread
        pool.touch(b)
        assert a.fingerprint in pool  # over budget, but not evictable
    pool.touch(b)
    assert a.fingerprint not in pool  # lock released: LRU drops it


def test_close_drops_everything_with_accounting():
    pool = SessionPool(max_bytes=1 << 30)
    for spec in ("grid:4x4", "grid:5x5"):
        _run_query(pool.acquire(spec))
    pool.close()
    assert len(pool) == 0
    assert pool.bytes_resident() == 0
    assert pool.sessions_evicted == 2
    assert pool.artifacts_evicted > 0
    assert list(pool.iter_stats()) == []
