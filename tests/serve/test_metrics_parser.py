"""The strict Prometheus text parser: accepts the grammar, rejects the
classic exposition bugs (the very ones satellite 3 fixed in the writer).
"""

import pathlib

import pytest

from repro.serve.metrics import parse_prometheus_text

GOLDEN = (
    pathlib.Path(__file__).parent.parent
    / "pram" / "golden" / "prometheus_multisession.prom"
)

VALID = (
    "# HELP repro_hits_total Cache hits.\n"
    "# TYPE repro_hits_total counter\n"
    'repro_hits_total{session="abc"} 3\n'
    'repro_hits_total{session="def"} 1\n'
    "# HELP repro_resident Resident sessions.\n"
    "# TYPE repro_resident gauge\n"
    "repro_resident 2\n"
)


def test_accepts_valid_exposition():
    families = parse_prometheus_text(VALID)
    assert set(families) == {"repro_hits_total", "repro_resident"}
    assert families["repro_hits_total"] == [
        ({"session": "abc"}, 3.0),
        ({"session": "def"}, 1.0),
    ]
    assert families["repro_resident"] == [({}, 2.0)]


def test_accepts_the_committed_golden_file():
    families = parse_prometheus_text(GOLDEN.read_text())
    assert families, "golden exposition parsed to nothing"


def test_rejects_missing_trailing_newline():
    with pytest.raises(ValueError, match="newline"):
        parse_prometheus_text(VALID.rstrip("\n"))
    with pytest.raises(ValueError, match="empty"):
        parse_prometheus_text("")


def test_rejects_duplicate_headers():
    # The pre-fix MetricsWriter emitted one HELP/TYPE pair per *sample*;
    # a strict scraper refuses the duplicate header.
    dup = VALID + (
        "# HELP repro_hits_total Cache hits.\n"
        "# TYPE repro_hits_total counter\n"
        'repro_hits_total{session="ghi"} 9\n'
    )
    with pytest.raises(ValueError, match="duplicate HELP"):
        parse_prometheus_text(dup)


def test_rejects_sample_before_headers():
    with pytest.raises(ValueError, match="before its headers"):
        parse_prometheus_text("repro_hits_total 3\n")


def test_rejects_type_not_following_help():
    text = (
        "# HELP a First.\n"
        "# HELP b Second.\n"
        "# TYPE a counter\n"
        "a 1\n"
    )
    with pytest.raises(ValueError, match="directly follow"):
        parse_prometheus_text(text)


def test_rejects_unknown_type():
    text = "# HELP a A.\n# TYPE a tally\na 1\n"
    with pytest.raises(ValueError, match="unknown type"):
        parse_prometheus_text(text)


def test_rejects_interleaved_family_blocks():
    text = (
        "# HELP a A.\n# TYPE a counter\n"
        "a 1\n"
        "# HELP b B.\n# TYPE b counter\n"
        "b 1\n"
        "a 2\n"
    )
    with pytest.raises(ValueError, match="outside its"):
        parse_prometheus_text(text)


def test_rejects_duplicate_label_sets():
    text = (
        "# HELP a A.\n# TYPE a counter\n"
        'a{x="1"} 1\n'
        'a{x="1"} 2\n'
    )
    with pytest.raises(ValueError, match="duplicate label set"):
        parse_prometheus_text(text)


def test_rejects_malformed_samples_and_labels():
    for bad in (
        "# HELP a A.\n# TYPE a counter\na one\n",
        "# HELP a A.\n# TYPE a counter\na{x=1} 1\n",
        '# HELP a A.\n# TYPE a counter\na{x="1" y="2"} 1\n',
    ):
        with pytest.raises(ValueError):
            parse_prometheus_text(bad)


def test_rejects_help_without_type():
    with pytest.raises(ValueError, match="no TYPE"):
        parse_prometheus_text("# HELP a A.\n")
