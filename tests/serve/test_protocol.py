"""Unit tests for request validation and the coalescing key."""

import pytest

from repro.serve.errors import BadRequest
from repro.serve.protocol import parse_body, parse_query


def test_parse_query_normalizes_defaults():
    req = parse_query(
        "decide", {"target": "grid:4x4", "pattern": "cycle:4"}
    )
    assert req.mode == "decide"
    assert req.target == "grid:4x4"
    assert req.patterns == ("cycle:4",)
    assert req.seed == 0
    assert req.rounds is None
    assert req.engine is None
    assert req.plan == "auto"
    assert req.explain is False


def test_parse_query_rejects_unknown_fields():
    with pytest.raises(BadRequest, match="unknown fields: frobnicate"):
        parse_query(
            "decide",
            {"target": "grid:4x4", "pattern": "cycle:4", "frobnicate": 1},
        )


def test_parse_query_requires_target_and_pattern():
    with pytest.raises(BadRequest, match="'target'"):
        parse_query("decide", {"pattern": "cycle:4"})
    with pytest.raises(BadRequest, match="'pattern'"):
        parse_query("decide", {"target": "grid:4x4"})


def test_parse_query_maps_bad_spec_to_bad_request():
    # cli.parse_target raises SystemExit on unknown families; the
    # service must turn that into a 400, never die.
    with pytest.raises(BadRequest):
        parse_query(
            "decide", {"target": "nope:3", "pattern": "cycle:4"}
        )
    with pytest.raises(BadRequest):
        parse_query(
            "decide", {"target": "grid:4x4", "pattern": "nope:3"}
        )


def test_parse_query_connectivity_takes_no_pattern():
    req = parse_query("connectivity", {"target": "wheel:6"})
    assert req.patterns == ()
    with pytest.raises(BadRequest, match="no pattern"):
        parse_query(
            "connectivity", {"target": "wheel:6", "pattern": "cycle:4"}
        )


def test_parse_query_batch_requires_pattern_list():
    req = parse_query(
        "batch",
        {"target": "grid:4x4", "patterns": ["cycle:4", "path:3"]},
        batch=True,
    )
    assert req.patterns == ("cycle:4", "path:3")
    for bad in ({}, {"patterns": []}, {"patterns": "cycle:4"}):
        payload = {"target": "grid:4x4", **bad}
        with pytest.raises(BadRequest):
            parse_query("batch", payload, batch=True)


@pytest.mark.parametrize(
    "field,value",
    [
        ("seed", "zero"),
        ("seed", True),
        ("rounds", 0),
        ("rounds", "many"),
        ("engine", "quantum"),
        ("plan", "vibes"),
        ("explain", "yes"),
    ],
)
def test_parse_query_rejects_bad_field_values(field, value):
    payload = {"target": "grid:4x4", "pattern": "cycle:4", field: value}
    with pytest.raises(BadRequest):
        parse_query("decide", payload)


def test_canonical_ignores_explain_but_not_parameters():
    base = {"target": "grid:4x4", "pattern": "cycle:4", "seed": 7}
    a = parse_query("decide", base)
    b = parse_query("decide", {**base, "explain": True})
    assert a.canonical() == b.canonical()
    for change in (
        {"seed": 8},
        {"rounds": 2},
        {"engine": "sequential"},
        {"plan": "manual"},
        {"pattern": "path:3"},
    ):
        other = parse_query("decide", {**base, **change})
        assert other.canonical() != a.canonical()


def test_parse_body_rejects_non_objects():
    with pytest.raises(BadRequest, match="empty body"):
        parse_body(b"")
    with pytest.raises(BadRequest, match="not valid JSON"):
        parse_body(b"{nope")
    with pytest.raises(BadRequest, match="JSON object"):
        parse_body(b"[1, 2]")
