"""Shared harness for the query-service tests: an in-process daemon on
an ephemeral port (real sockets, real HTTP framing) plus a tiny client.
"""

import asyncio
import contextlib
import http.client
import json
import threading

import pytest

from repro.serve import QueryServer


@contextlib.contextmanager
def running_server(**kwargs):
    """Run a :class:`QueryServer` on its own event-loop thread.

    Yields the server (its ``.port`` is the ephemeral bound port); tears
    it down through the graceful-drain path on exit.
    """
    holder = {}
    ready = threading.Event()

    def run():
        async def main():
            server = QueryServer(port=0, **kwargs)
            await server.start()
            holder["server"] = server
            holder["loop"] = asyncio.get_running_loop()
            ready.set()
            await server.serve_forever()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(30), "server did not come up"
    try:
        yield holder["server"]
    finally:
        holder["loop"].call_soon_threadsafe(
            holder["server"].request_shutdown
        )
        thread.join(60)
        assert not thread.is_alive(), "server did not drain"


def request(port, method, path, payload=None, timeout=120):
    """One HTTP request against the daemon; returns (status, body).

    ``body`` is parsed JSON for ``application/json`` responses, raw text
    otherwise (``/metrics``).
    """
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        body = json.dumps(payload) if payload is not None else None
        conn.request(method, path, body=body)
        resp = conn.getresponse()
        raw = resp.read()
        if resp.getheader("Content-Type", "").startswith("application/json"):
            return resp.status, json.loads(raw)
        return resp.status, raw.decode()
    finally:
        conn.close()


@pytest.fixture()
def server():
    """A fresh default-configuration daemon per test."""
    with running_server() as srv:
        yield srv
