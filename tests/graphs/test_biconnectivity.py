"""Articulation points / 2-connectivity vs networkx."""

import networkx as nx
import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.graphs import (
    Graph,
    antiprism_graph,
    articulation_points,
    cycle_graph,
    delaunay_graph,
    grid_graph,
    is_biconnected,
    path_graph,
    star_graph,
    wheel_graph,
)


def to_nx(g):
    h = nx.Graph()
    h.add_nodes_from(range(g.n))
    h.add_edges_from(g.iter_edges())
    return h


@st.composite
def sparse_graphs(draw):
    n = draw(st.integers(min_value=1, max_value=50))
    m = draw(st.integers(min_value=0, max_value=2 * n))
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=10**6)))
    edges = []
    for _ in range(m):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            edges.append((int(u), int(v)))
    return Graph(n, edges)


class TestArticulationPoints:
    def test_path_interior_vertices(self):
        cuts, _ = articulation_points(path_graph(5).graph)
        assert cuts.tolist() == [1, 2, 3]

    def test_cycle_has_none(self):
        cuts, _ = articulation_points(cycle_graph(8).graph)
        assert cuts.size == 0

    def test_star_center(self):
        cuts, _ = articulation_points(star_graph(5).graph)
        assert cuts.tolist() == [0]

    def test_bowtie(self):
        # Two triangles sharing vertex 2.
        g = Graph(5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)])
        cuts, _ = articulation_points(g)
        assert cuts.tolist() == [2]

    def test_disconnected_graph(self):
        g = Graph(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        cuts, _ = articulation_points(g)
        assert cuts.tolist() == [1, 4]

    @given(sparse_graphs())
    def test_matches_networkx(self, g):
        cuts, _ = articulation_points(g)
        expect = sorted(nx.articulation_points(to_nx(g)))
        assert cuts.tolist() == expect


class TestIsBiconnected:
    def test_known_families(self):
        assert is_biconnected(cycle_graph(6).graph)[0]
        assert is_biconnected(wheel_graph(6).graph)[0]
        assert is_biconnected(antiprism_graph(5).graph)[0]
        assert not is_biconnected(path_graph(5).graph)[0]
        assert not is_biconnected(star_graph(4).graph)[0]

    def test_small_graphs_are_not_biconnected(self):
        # Fewer than 3 vertices cannot be 2-connected under the paper's
        # definition (needs c + 1 vertices).
        assert not is_biconnected(Graph(2, [(0, 1)]))[0]
        assert not is_biconnected(Graph.empty(1))[0]

    @given(sparse_graphs())
    def test_matches_networkx(self, g):
        ours, _ = is_biconnected(g)
        theirs = g.n >= 3 and nx.is_biconnected(to_nx(g))
        assert ours == theirs

    def test_delaunay_is_biconnected(self):
        assert is_biconnected(delaunay_graph(100, seed=7).graph)[0]

    def test_grid_is_biconnected(self):
        assert is_biconnected(grid_graph(4, 5).graph)[0]
