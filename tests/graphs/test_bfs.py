"""Tests for parallel BFS: levels vs networkx, cost shape vs diameter."""

import networkx as nx
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graphs import (
    Graph,
    cycle_graph,
    delaunay_graph,
    grid_graph,
    parallel_bfs,
    path_graph,
)


def to_nx(g):
    h = nx.Graph()
    h.add_nodes_from(range(g.n))
    h.add_edges_from(g.iter_edges())
    return h


class TestCorrectness:
    def test_path_levels(self):
        g = path_graph(6).graph
        res, _ = parallel_bfs(g, [0])
        assert res.level.tolist() == [0, 1, 2, 3, 4, 5]
        assert res.parent.tolist() == [-1, 0, 1, 2, 3, 4]

    def test_unreached_marked(self):
        g = Graph(4, [(0, 1)])
        res, _ = parallel_bfs(g, [0])
        assert res.level.tolist() == [0, 1, -1, -1]

    def test_multi_source(self):
        g = path_graph(7).graph
        res, _ = parallel_bfs(g, [0, 6])
        assert res.level.tolist() == [0, 1, 2, 3, 2, 1, 0]

    def test_parents_form_valid_tree(self):
        g = delaunay_graph(80, seed=4).graph
        res, _ = parallel_bfs(g, [0])
        for v in range(1, g.n):
            p = int(res.parent[v])
            assert g.has_edge(p, v)
            assert res.level[v] == res.level[p] + 1

    @given(st.integers(min_value=0, max_value=200))
    def test_matches_networkx_on_delaunay(self, seed):
        g = delaunay_graph(40, seed=seed).graph
        res, _ = parallel_bfs(g, [0])
        expect = nx.single_source_shortest_path_length(to_nx(g), 0)
        for v in range(g.n):
            assert res.level[v] == expect.get(v, -1)

    def test_source_validation(self):
        g = path_graph(3).graph
        with pytest.raises(ValueError):
            parallel_bfs(g, [])
        with pytest.raises(ValueError):
            parallel_bfs(g, [3])


class TestCost:
    def test_depth_tracks_bfs_levels(self):
        g = path_graph(100).graph
        res, cost = parallel_bfs(g, [0])
        assert res.depth == 99
        # One round per level plus init/terminal rounds.
        assert res.depth <= cost.depth <= res.depth + 3

    def test_work_linear_in_size(self):
        g = grid_graph(20, 20).graph
        _, cost = parallel_bfs(g, [0])
        assert cost.work <= 6 * (g.n + 2 * g.m)

    def test_low_diameter_low_depth(self):
        # A cycle has diameter n/2; BFS from one source: depth ~ n/2.
        g = cycle_graph(64).graph
        res, cost = parallel_bfs(g, [0])
        assert res.depth == 32
        assert cost.depth <= 35
