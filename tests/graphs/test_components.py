"""Connected components vs networkx; cost shape checks."""

import networkx as nx
import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.graphs import (
    Graph,
    component_members,
    connected_components,
    delaunay_graph,
    grid_graph,
    is_connected,
    path_graph,
)


def to_nx(g):
    h = nx.Graph()
    h.add_nodes_from(range(g.n))
    h.add_edges_from(g.iter_edges())
    return h


@st.composite
def sparse_graphs(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    m = draw(st.integers(min_value=0, max_value=2 * n))
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=10**6)))
    edges = []
    for _ in range(m):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            edges.append((int(u), int(v)))
    return Graph(n, edges)


class TestComponents:
    def test_empty_graph(self):
        labels, count, _ = connected_components(Graph.empty(0))
        assert count == 0 and labels.size == 0

    def test_isolated_vertices(self):
        labels, count, _ = connected_components(Graph.empty(4))
        assert count == 4
        assert len(set(labels.tolist())) == 4

    def test_single_component(self):
        g = grid_graph(6, 6).graph
        labels, count, _ = connected_components(g)
        assert count == 1
        assert np.all(labels == labels[0])

    def test_two_components(self):
        g = Graph(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        labels, count, _ = connected_components(g)
        assert count == 2
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]
        assert labels[0] != labels[3]

    @given(sparse_graphs())
    def test_matches_networkx(self, g):
        labels, count, _ = connected_components(g)
        expect = list(nx.connected_components(to_nx(g)))
        assert count == len(expect)
        for comp in expect:
            comp = sorted(comp)
            assert len({int(labels[v]) for v in comp}) == 1

    @given(sparse_graphs())
    def test_labels_compact(self, g):
        labels, count, _ = connected_components(g)
        assert sorted(set(labels.tolist())) == list(range(count))

    def test_component_members_partition(self):
        g = Graph(5, [(0, 2), (1, 3)])
        labels, count, _ = connected_components(g)
        groups = component_members(labels, count)
        union = sorted(int(v) for grp in groups for v in grp)
        assert union == list(range(5))
        for grp in groups:
            assert len({int(labels[v]) for v in grp}) == 1

    def test_is_connected(self):
        assert is_connected(path_graph(5).graph)[0]
        assert not is_connected(Graph(3, [(0, 1)]))[0]
        assert is_connected(Graph.empty(1))[0]
        assert is_connected(Graph.empty(0))[0]


class TestCost:
    def test_logarithmic_depth(self):
        g = delaunay_graph(2000, seed=1).graph
        _, _, cost = connected_components(g)
        import math

        assert cost.depth <= 12 * (math.log2(g.n) + 2)

    def test_near_linear_work(self):
        g = delaunay_graph(2000, seed=2).graph
        _, _, cost = connected_components(g)
        import math

        assert cost.work <= 12 * (g.n + g.m) * (math.log2(g.n) + 2)
