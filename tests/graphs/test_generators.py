"""Generator sanity tests: sizes, degrees, planarity (networkx oracle)."""

import networkx as nx
import numpy as np
import pytest

from repro.graphs import (
    antiprism_graph,
    apex_graph,
    complete_graph,
    cycle_graph,
    delaunay_graph,
    grid_graph,
    icosahedron_graph,
    ladder_graph,
    outerplanar_graph,
    path_graph,
    random_tree,
    star_graph,
    torus_grid,
    triangulated_grid,
    wheel_graph,
)


def to_nx(g):
    h = nx.Graph()
    h.add_nodes_from(range(g.n))
    h.add_edges_from(g.iter_edges())
    return h


PLANAR_CASES = [
    ("path", lambda: path_graph(10).graph),
    ("cycle", lambda: cycle_graph(12).graph),
    ("star", lambda: star_graph(8).graph),
    ("wheel", lambda: wheel_graph(9).graph),
    ("grid", lambda: grid_graph(5, 7).graph),
    ("tri-grid", lambda: triangulated_grid(5, 6).graph),
    ("delaunay", lambda: delaunay_graph(60, seed=1).graph),
    ("antiprism", lambda: antiprism_graph(7).graph),
    ("icosahedron", lambda: icosahedron_graph().graph),
    ("ladder", lambda: ladder_graph(6).graph),
    ("outerplanar", lambda: outerplanar_graph(15, seed=2).graph),
    ("k4", lambda: complete_graph(4)),
    ("tree", lambda: random_tree(40, seed=3)),
]


@pytest.mark.parametrize("name,make", PLANAR_CASES)
def test_generators_are_planar(name, make):
    g = make()
    ok, _ = nx.check_planarity(to_nx(g))
    assert ok, f"{name} generator produced a non-planar graph"


@pytest.mark.parametrize("name,make", PLANAR_CASES)
def test_generators_connected(name, make):
    g = make()
    assert nx.is_connected(to_nx(g))


class TestSizes:
    def test_path(self):
        gg = path_graph(5)
        assert gg.graph.n == 5 and gg.graph.m == 4
        assert gg.positions.shape == (5, 2)

    def test_cycle(self):
        assert cycle_graph(6).graph.m == 6
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_grid(self):
        g = grid_graph(3, 4).graph
        assert g.n == 12 and g.m == 3 * 3 + 2 * 4

    def test_triangulated_grid(self):
        g = triangulated_grid(3, 3).graph
        assert g.m == grid_graph(3, 3).graph.m + 4

    def test_wheel(self):
        g = wheel_graph(5).graph
        assert g.n == 6 and g.m == 10
        assert g.degree(0) == 5

    def test_antiprism_is_4_regular(self):
        g = antiprism_graph(6).graph
        assert g.n == 12 and g.m == 24
        assert np.all(g.degrees() == 4)

    def test_icosahedron(self):
        g = icosahedron_graph().graph
        assert g.n == 12 and g.m == 30
        assert np.all(g.degrees() == 5)

    def test_torus_grid_is_4_regular_nonplanar(self):
        g = torus_grid(5, 5)
        assert np.all(g.degrees() == 4)
        ok, _ = nx.check_planarity(to_nx(g))
        assert not ok  # genus 1

    def test_random_tree(self):
        g = random_tree(30, seed=0)
        assert g.m == 29

    def test_apex_over_grid_is_nonplanar(self):
        g = apex_graph(grid_graph(4, 4).graph)
        assert g.degree(16) == 16
        ok, _ = nx.check_planarity(to_nx(g))
        assert not ok

    def test_delaunay_reproducible(self):
        a = delaunay_graph(40, seed=9).graph
        b = delaunay_graph(40, seed=9).graph
        assert a == b

    def test_outerplanar_is_maximal(self):
        # A maximal outerplanar graph on n vertices has 2n - 3 edges.
        g = outerplanar_graph(12, seed=5).graph
        assert g.m == 2 * 12 - 3

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            grid_graph(0, 3)
        with pytest.raises(ValueError):
            antiprism_graph(2)
        with pytest.raises(ValueError):
            torus_grid(2, 5)
        with pytest.raises(ValueError):
            wheel_graph(2)
        with pytest.raises(ValueError):
            random_tree(0, seed=1)
        with pytest.raises(ValueError):
            ladder_graph(1)
        with pytest.raises(ValueError):
            outerplanar_graph(2, seed=1)
        with pytest.raises(ValueError):
            delaunay_graph(2, seed=1)


class TestGeometry:
    def test_grid_positions_match_lattice(self):
        gg = grid_graph(2, 3)
        assert gg.positions[0].tolist() == [0.0, 0.0]
        assert gg.positions[5].tolist() == [2.0, 1.0]

    def test_positions_unique(self):
        for gg in (grid_graph(4, 4), delaunay_graph(50, 3), antiprism_graph(5)):
            pts = {tuple(p) for p in gg.positions.tolist()}
            assert len(pts) == gg.graph.n
