"""Tests for the CSR graph representation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graphs import Graph


@st.composite
def random_graphs(draw, max_n=30):
    n = draw(st.integers(min_value=0, max_value=max_n))
    if n < 2:
        return Graph(n, []), n
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), max_size=3 * n))
    return Graph(n, edges), n


class TestConstruction:
    def test_empty(self):
        g = Graph.empty(5)
        assert g.n == 5 and g.m == 0
        assert all(g.degree(v) == 0 for v in range(5))

    def test_triangle(self):
        g = Graph(3, [(0, 1), (1, 2), (2, 0)])
        assert g.m == 3
        assert g.degrees().tolist() == [2, 2, 2]
        assert g.neighbors(0).tolist() == [1, 2]

    def test_duplicate_edges_merged(self):
        g = Graph(3, [(0, 1), (1, 0), (0, 1)])
        assert g.m == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Graph(2, [(1, 1)])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Graph(2, [(0, 2)])
        with pytest.raises(ValueError):
            Graph(2, [(-1, 0)])

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            Graph(-1, [])

    def test_neighbors_sorted(self):
        g = Graph(5, [(2, 4), (2, 0), (2, 3), (2, 1)])
        assert g.neighbors(2).tolist() == [0, 1, 3, 4]

    def test_from_csr_roundtrip(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        h = Graph.from_csr(g.n, g.indptr, g.indices)
        assert g == h


class TestQueries:
    @given(random_graphs())
    def test_has_edge_matches_edge_list(self, gn):
        g, n = gn
        listed = {tuple(e) for e in g.edges().tolist()}
        for u in range(n):
            for v in range(n):
                expect = (min(u, v), max(u, v)) in listed and u != v
                assert g.has_edge(u, v) == expect

    @given(random_graphs())
    def test_degree_sum_is_twice_edges(self, gn):
        g, _ = gn
        assert int(g.degrees().sum()) == 2 * g.m

    @given(random_graphs())
    def test_edges_canonical(self, gn):
        g, _ = gn
        e = g.edges()
        if e.size:
            assert np.all(e[:, 0] < e[:, 1])

    def test_iter_edges(self):
        g = Graph(3, [(1, 0), (2, 1)])
        assert sorted(g.iter_edges()) == [(0, 1), (1, 2)]

    def test_max_degree(self):
        assert Graph.empty(0).max_degree() == 0
        assert Graph(4, [(0, 1), (0, 2), (0, 3)]).max_degree() == 3


class TestDerivedGraphs:
    def test_induced_subgraph(self):
        g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
        sub, originals = g.induced_subgraph([0, 1, 2])
        assert originals.tolist() == [0, 1, 2]
        assert sub.n == 3 and sub.m == 2
        assert sub.has_edge(0, 1) and sub.has_edge(1, 2)

    def test_induced_subgraph_relabels(self):
        g = Graph(6, [(3, 5), (5, 4)])
        sub, originals = g.induced_subgraph([5, 3])
        assert originals.tolist() == [3, 5]
        assert sub.m == 1 and sub.has_edge(0, 1)

    def test_induced_subgraph_out_of_range(self):
        with pytest.raises(ValueError):
            Graph.empty(3).induced_subgraph([4])

    @given(random_graphs())
    def test_induced_subgraph_edge_subset(self, gn):
        g, n = gn
        half = list(range(0, n, 2))
        sub, originals = g.induced_subgraph(half)
        for a, b in sub.iter_edges():
            assert g.has_edge(int(originals[a]), int(originals[b]))

    def test_quotient_contracts_classes(self):
        # Path 0-1-2-3; contract {0,1} and {2,3} -> single edge.
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        minor, classes = g.quotient(np.array([7, 7, 9, 9]))
        assert minor.n == 2 and minor.m == 1
        assert classes.tolist() == [0, 0, 1, 1]

    def test_quotient_drops_self_loops_and_parallels(self):
        g = Graph(4, [(0, 1), (0, 2), (1, 2), (2, 3), (1, 3)])
        minor, _ = g.quotient(np.array([0, 0, 1, 1]))
        assert minor.n == 2 and minor.m == 1

    def test_quotient_label_length_checked(self):
        with pytest.raises(ValueError):
            Graph.empty(3).quotient(np.array([0, 1]))

    def test_with_edges_added(self):
        g = Graph(3, [(0, 1)])
        h = g.with_edges_added([(1, 2), (0, 1)])
        assert h.m == 2 and g.m == 1

    def test_equality_and_hash(self):
        a = Graph(3, [(0, 1), (1, 2)])
        b = Graph(3, [(1, 2), (0, 1)])
        assert a == b and hash(a) == hash(b)
        assert a != Graph(3, [(0, 1)])
