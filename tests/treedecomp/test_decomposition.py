"""TreeDecomposition core: validation, binarization, width."""

import numpy as np
import pytest

from repro.graphs import Graph, cycle_graph, grid_graph, path_graph
from repro.treedecomp import TreeDecomposition


def path_decomposition_of_path(n):
    """The canonical width-1 decomposition of P_n: bags {i, i+1}."""
    bags = [np.array([i, i + 1]) for i in range(n - 1)]
    parent = np.array([-1] + list(range(n - 2)))
    return TreeDecomposition(bags=bags, parent=parent, root=0)


class TestBasics:
    def test_width(self):
        td = path_decomposition_of_path(5)
        assert td.width() == 1
        assert td.num_nodes == 4

    def test_figure1_example(self):
        # The decomposition from Figure 1 of the paper.
        # Graph: a-b, b-c, a-c, c-d, d-e, c-e, c-f, e-f, a-f, f-g, a-g.
        a, b, c, d, e, f, g = range(7)
        graph = Graph(
            7,
            [
                (a, b), (b, c), (a, c),
                (c, d), (d, e), (c, e),
                (c, f), (e, f), (a, f),
                (f, g), (a, g),
            ],
        )
        td = TreeDecomposition(
            bags=[
                np.array([c, e, f]),
                np.array([c, d, e]),
                np.array([a, c, f]),
                np.array([a, b, c]),
                np.array([a, f, g]),
            ],
            parent=np.array([-1, 0, 0, 2, 2]),
            root=0,
        )
        td.validate(graph)
        assert td.width() == 2

    def test_validate_rejects_missing_vertex(self):
        g = path_graph(3).graph
        td = TreeDecomposition(
            bags=[np.array([0, 1])], parent=np.array([-1]), root=0
        )
        with pytest.raises(ValueError, match="vertex 2"):
            td.validate(g)

    def test_validate_rejects_missing_edge(self):
        g = cycle_graph(3).graph
        td = TreeDecomposition(
            bags=[np.array([0, 1]), np.array([1, 2])],
            parent=np.array([-1, 0]),
            root=0,
        )
        with pytest.raises(ValueError, match="edge"):
            td.validate(g)

    def test_validate_rejects_discontiguous_vertex(self):
        g = path_graph(4).graph
        td = TreeDecomposition(
            bags=[np.array([0, 1]), np.array([1, 2]), np.array([2, 3, 0])],
            parent=np.array([-1, 0, 1]),
            root=0,
        )
        with pytest.raises(ValueError, match="contiguous"):
            td.validate(g)

    def test_structural_validation(self):
        with pytest.raises(ValueError):
            TreeDecomposition(bags=[], parent=np.array([]), root=0)
        with pytest.raises(ValueError):
            TreeDecomposition(
                bags=[np.array([0])], parent=np.array([0]), root=0
            )
        with pytest.raises(ValueError):  # two roots
            TreeDecomposition(
                bags=[np.array([0]), np.array([0])],
                parent=np.array([-1, -1]),
                root=0,
            )

    def test_height_and_order(self):
        td = path_decomposition_of_path(6)
        assert td.height() == 4
        order = td.topological_order()
        assert order[0] == 0 and len(order) == 5


class TestBinarize:
    def test_binarize_high_degree(self):
        # A star-shaped decomposition: root with 4 children.
        bags = [np.array([0])] + [np.array([0, i]) for i in range(1, 5)]
        td = TreeDecomposition(
            bags=bags, parent=np.array([-1, 0, 0, 0, 0]), root=0
        )
        g = Graph(5, [(0, i) for i in range(1, 5)])
        binary = td.binarize()
        assert binary.is_binary()
        binary.validate(g)
        assert binary.width() == td.width()

    def test_binarize_unary_chain(self):
        td = path_decomposition_of_path(5)
        g = path_graph(5).graph
        binary = td.binarize()
        assert binary.is_binary()
        binary.validate(g)
        assert binary.width() == 1

    def test_binarize_preserves_single_node(self):
        td = TreeDecomposition(
            bags=[np.array([0, 1])], parent=np.array([-1]), root=0
        )
        binary = td.binarize()
        assert binary.is_binary() and binary.num_nodes == 1

    def test_binarize_grid_minfill(self):
        from repro.treedecomp import minfill_decomposition

        g = grid_graph(4, 4).graph
        td, _ = minfill_decomposition(g)
        binary = td.binarize()
        assert binary.is_binary()
        binary.validate(g)
        assert binary.width() == td.width()
