"""Lemma 3.2 tests: layered path decomposition of rooted trees."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.treedecomp import (
    layered_paths,
    tree_layers_parallel,
    tree_layers_sequential,
)

NIL = -1


def random_tree_parent(n, rnd):
    parent = np.full(n, NIL, dtype=np.int64)
    for v in range(1, n):
        parent[v] = rnd.randrange(v)
    return parent, 0


def random_full_binary_parent(n_internal, rnd):
    n = 2 * n_internal + 1
    parent = np.full(n, NIL, dtype=np.int64)
    leaves = [0]
    nxt = 1
    for _ in range(n_internal):
        v = leaves.pop(rnd.randrange(len(leaves)))
        parent[nxt] = v
        parent[nxt + 1] = v
        leaves.extend([nxt, nxt + 1])
        nxt += 2
    return parent, 0


class TestLayers:
    def test_single_node(self):
        layers = tree_layers_sequential(np.array([NIL]), 0)
        assert layers.tolist() == [0]

    def test_path_tree_single_layer(self):
        # A path (every node one child): all layer 0, one path.
        n = 10
        parent = np.array([NIL] + list(range(n - 1)))
        layers = tree_layers_sequential(parent, 0)
        assert np.all(layers == 0)

    def test_perfect_binary_layers(self):
        # Perfect binary tree of height h: root layer h.
        h = 5
        n = 2 ** (h + 1) - 1
        parent = np.array([NIL] + [(v - 1) // 2 for v in range(1, n)])
        layers = tree_layers_sequential(parent, 0)
        assert layers[0] == h

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=1, max_value=150),
        st.randoms(use_true_random=False),
    )
    def test_layer_count_logarithmic(self, n, rnd):
        parent, root = random_tree_parent(n, rnd)
        layers = tree_layers_sequential(parent, root)
        assert layers.max(initial=0) <= np.log2(n) + 1

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=1, max_value=80),
        st.randoms(use_true_random=False),
    )
    def test_parallel_matches_sequential(self, n_internal, rnd):
        parent, root = random_full_binary_parent(n_internal, rnd)
        seq = tree_layers_sequential(parent, root)
        par, cost = tree_layers_parallel(parent, root)
        assert np.array_equal(seq, par)
        n = parent.shape[0]
        assert cost.work <= 150 * n

    def test_parallel_rejects_non_binary(self):
        parent = np.array([NIL, 0])
        with pytest.raises(ValueError):
            tree_layers_parallel(parent, 0)


class TestLayeredPaths:
    def assert_valid_path_decomposition(self, parent, root, pd):
        n = parent.shape[0]
        # Every node in exactly one path of its layer.
        seen = set()
        for layer_idx, layer in enumerate(pd.layers):
            for path in layer:
                for i, v in enumerate(path):
                    assert v not in seen
                    seen.add(v)
                    assert pd.layer_of[v] == layer_idx
                    # Consecutive path nodes are tree parent links.
                    if i + 1 < len(path):
                        assert parent[v] == path[i + 1]
        assert seen == set(range(n))
        # Lemma 3.2: nodes in layer i have no children in a layer larger
        # than i.
        for v in range(n):
            p = int(parent[v])
            if p != NIL:
                assert pd.layer_of[p] >= pd.layer_of[v]

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=1, max_value=150),
        st.randoms(use_true_random=False),
    )
    def test_random_trees(self, n, rnd):
        parent, root = random_tree_parent(n, rnd)
        pd, _ = layered_paths(parent, root)
        self.assert_valid_path_decomposition(parent, root, pd)
        assert pd.num_layers <= np.log2(n) + 2

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=1, max_value=60),
        st.randoms(use_true_random=False),
    )
    def test_binary_trees_parallel_layers(self, n_internal, rnd):
        parent, root = random_full_binary_parent(n_internal, rnd)
        pd, cost = layered_paths(parent, root, use_parallel_layers=True)
        self.assert_valid_path_decomposition(parent, root, pd)
        n = parent.shape[0]
        lg = int(np.ceil(np.log2(n + 1)))
        assert cost.depth <= 60 * (lg + 2)

    def test_chain(self):
        n = 12
        parent = np.array([NIL] + list(range(n - 1)))
        pd, _ = layered_paths(parent, 0)
        assert pd.num_layers == 1
        assert len(pd.layers[0]) == 1
        path = pd.layers[0][0]
        # Bottom-to-top: deepest node first, root last.
        assert path[-1] == 0
        assert path[0] == n - 1

    def test_root_is_in_top_layer(self):
        rnd = __import__("random").Random(7)
        parent, root = random_tree_parent(60, rnd)
        pd, _ = layered_paths(parent, root)
        assert pd.layer_of[root] == pd.num_layers - 1
