"""Baker/Eppstein decomposition: validity and the 3D + 2 width bound."""

import numpy as np
import pytest

from repro.graphs import (
    cycle_graph,
    delaunay_graph,
    grid_graph,
    outerplanar_graph,
    parallel_bfs,
    path_graph,
    star_graph,
    triangulated_grid,
    wheel_graph,
)
from repro.planar import embed_geometric, embed_planar
from repro.treedecomp import baker_decomposition


def bfs_depth(graph, root):
    res, _ = parallel_bfs(graph, [root])
    return res.depth


CASES = [
    ("path", path_graph(12), 0),
    ("cycle", cycle_graph(14), 0),
    ("star", star_graph(9), 0),
    ("wheel", wheel_graph(10), 0),
    ("grid", grid_graph(5, 6), 0),
    ("tri-grid", triangulated_grid(5, 5), 0),
    ("delaunay", delaunay_graph(80, seed=3), 0),
    ("outerplanar", outerplanar_graph(16, seed=4), 0),
]


@pytest.mark.parametrize("name,gg,root", CASES, ids=[c[0] for c in CASES])
class TestBakerOnFamilies:
    def test_valid_decomposition(self, name, gg, root):
        emb, _ = embed_geometric(gg)
        td, _ = baker_decomposition(emb, root)
        td.validate(gg.graph)

    def test_width_bound(self, name, gg, root):
        emb, _ = embed_geometric(gg)
        td, _ = baker_decomposition(emb, root)
        depth = bfs_depth(gg.graph, root)
        assert td.width() <= 3 * depth + 2


class TestBakerSpecifics:
    def test_single_vertex(self):
        from repro.planar import PlanarEmbedding

        emb = PlanarEmbedding(1)
        td, _ = baker_decomposition(emb, 0)
        assert td.num_nodes == 1
        assert td.bags[0].tolist() == [0]

    def test_single_edge(self):
        from repro.graphs import path_graph

        emb, _ = embed_geometric(path_graph(2))
        td, _ = baker_decomposition(emb, 0)
        td.validate(path_graph(2).graph)
        assert td.width() <= 3 * 1 + 2

    def test_disconnected_rejected(self):
        from repro.graphs import Graph, GeometricGraph

        gg = GeometricGraph(
            Graph(4, [(0, 1), (2, 3)]),
            np.array([[0.0, 0], [1, 0], [0, 1], [1, 1]]),
        )
        emb, _ = embed_geometric(gg)
        with pytest.raises(ValueError, match="connected"):
            baker_decomposition(emb, 0)

    def test_abstract_embedding_input(self):
        # Works on DMP-produced embeddings too (icosahedron).
        from repro.graphs import icosahedron_graph

        g = icosahedron_graph().graph
        emb = embed_planar(g)
        td, _ = baker_decomposition(emb, 0)
        td.validate(g)
        assert td.width() <= 3 * bfs_depth(g, 0) + 2

    def test_low_diameter_beats_generic_treewidth(self):
        # A 20x4 grid has diameter 22 but BFS depth from a corner is 22;
        # rooting at the center of the short side gives small depth and the
        # width tracks the *depth*, not n.
        gg = grid_graph(3, 30)
        emb, _ = embed_geometric(gg)
        root = 45  # middle of the long strip
        td, _ = baker_decomposition(emb, root)
        td.validate(gg.graph)
        assert td.width() <= 3 * bfs_depth(gg.graph, root) + 2

    def test_number_of_nodes_linear_in_faces(self):
        gg = delaunay_graph(100, seed=5)
        emb, _ = embed_geometric(gg)
        td, _ = baker_decomposition(emb, 0)
        # One node per stellated face: <= 2 * (2m) triangles.
        assert td.num_nodes <= 4 * gg.graph.m

    def test_cost_reasonable(self):
        gg = delaunay_graph(150, seed=6)
        emb, _ = embed_geometric(gg)
        _, cost = baker_decomposition(emb, 0)
        depth = bfs_depth(gg.graph, 0)
        assert cost.depth <= 6 * (depth + 8)
