"""Min-fill heuristic decomposition tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    outerplanar_graph,
    path_graph,
    random_tree,
    torus_grid,
)
from repro.treedecomp import minfill_decomposition


class TestKnownWidths:
    def test_tree_width_one(self):
        g = random_tree(25, seed=1)
        td, _ = minfill_decomposition(g)
        td.validate(g)
        assert td.width() == 1

    def test_cycle_width_two(self):
        g = cycle_graph(12).graph
        td, _ = minfill_decomposition(g)
        td.validate(g)
        assert td.width() == 2

    def test_outerplanar_width_two(self):
        g = outerplanar_graph(14, seed=2).graph
        td, _ = minfill_decomposition(g)
        td.validate(g)
        assert td.width() == 2

    def test_clique_width(self):
        g = complete_graph(5)
        td, _ = minfill_decomposition(g)
        td.validate(g)
        assert td.width() == 4

    def test_grid_width_close_to_optimal(self):
        g = grid_graph(4, 8).graph
        td, _ = minfill_decomposition(g)
        td.validate(g)
        assert 4 <= td.width() + 1 <= 7  # treewidth of 4xN grid is 4

    def test_torus_grid(self):
        g = torus_grid(4, 4)
        td, _ = minfill_decomposition(g)
        td.validate(g)
        assert td.width() >= 4  # genus-1 grid needs more than planar

    def test_path(self):
        g = path_graph(10).graph
        td, _ = minfill_decomposition(g)
        td.validate(g)
        assert td.width() == 1


class TestRobustness:
    def test_single_vertex(self):
        td, _ = minfill_decomposition(Graph.empty(1))
        td.validate(Graph.empty(1))

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            minfill_decomposition(Graph.empty(0))

    def test_disconnected(self):
        g = Graph(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        td, _ = minfill_decomposition(g)
        td.validate(g)
        assert td.width() == 1

    def test_isolated_vertices(self):
        g = Graph(4, [(0, 1)])
        td, _ = minfill_decomposition(g)
        td.validate(g)

    def test_min_degree_strategy(self):
        g = grid_graph(4, 4).graph
        td, _ = minfill_decomposition(g, strategy="min_degree")
        td.validate(g)

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            minfill_decomposition(path_graph(3).graph, strategy="magic")

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=1, max_value=25),
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_always_valid_on_random_graphs(self, n, m, seed):
        rng = np.random.default_rng(seed)
        edges = []
        for _ in range(m):
            u, v = rng.integers(0, n, size=2)
            if u != v:
                edges.append((int(u), int(v)))
        g = Graph(n, edges)
        td, _ = minfill_decomposition(g)
        td.validate(g)
