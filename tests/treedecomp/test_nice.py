"""Nice decomposition conversion tests."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    Graph,
    cycle_graph,
    delaunay_graph,
    grid_graph,
    path_graph,
    random_tree,
)
from repro.planar import embed_geometric
from repro.treedecomp import (
    TreeDecomposition,
    baker_decomposition,
    make_nice,
    minfill_decomposition,
)


def nice_of(graph, td):
    nd, _ = make_nice(td)
    nd.validate_structure()
    nd.as_tree_decomposition().validate(graph)
    return nd


class TestMakeNice:
    def test_single_bag(self):
        g = cycle_graph(3).graph
        td, _ = minfill_decomposition(g)
        nd = nice_of(g, td)
        assert nd.width() == td.width()
        # Root bag empty.
        assert nd.bags[nd.root].size == 0

    def test_path_decomposition(self):
        g = path_graph(6).graph
        bags = [np.array([i, i + 1]) for i in range(5)]
        td = TreeDecomposition(
            bags=bags, parent=np.array([-1, 0, 1, 2, 3]), root=0
        )
        nd = nice_of(g, td)
        assert nd.width() == 1
        kinds = set(nd.kinds)
        assert kinds == {"leaf", "introduce", "forget"}

    def test_join_nodes_for_branching(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        bags = [np.array([0]), np.array([0, 1]), np.array([0, 2]),
                np.array([0, 3])]
        td = TreeDecomposition(
            bags=bags, parent=np.array([-1, 0, 0, 0]), root=0
        )
        nd = nice_of(g, td)
        assert nd.kinds.count("join") == 2

    def test_width_preserved(self):
        g = grid_graph(4, 5).graph
        td, _ = minfill_decomposition(g)
        nd = nice_of(g, td)
        assert nd.width() == td.width()

    def test_baker_to_nice(self):
        gg = delaunay_graph(60, seed=9)
        emb, _ = embed_geometric(gg)
        td, _ = baker_decomposition(emb, 0)
        nd = nice_of(gg.graph, td)
        assert nd.width() == td.width()

    def test_leaf_bags_empty(self):
        g = cycle_graph(5).graph
        td, _ = minfill_decomposition(g)
        nd, _ = make_nice(td)
        for i, kind in enumerate(nd.kinds):
            if kind == "leaf":
                assert nd.bags[i].size == 0

    def test_node_count_linear(self):
        g = grid_graph(5, 5).graph
        td, _ = minfill_decomposition(g)
        nd, _ = make_nice(td)
        assert nd.num_nodes <= 4 * td.num_nodes * (td.width() + 2)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=2, max_value=40),
           st.integers(min_value=0, max_value=10**6))
    def test_random_trees_roundtrip(self, n, seed):
        g = random_tree(n, seed=seed)
        td, _ = minfill_decomposition(g)
        nd = nice_of(g, td)
        assert nd.width() == 1

    def test_every_graph_vertex_introduced_and_forgotten(self):
        g = cycle_graph(6).graph
        td, _ = minfill_decomposition(g)
        nd, _ = make_nice(td)
        introduced = {}
        forgotten = {}
        for i, kind in enumerate(nd.kinds):
            if kind == "introduce":
                introduced.setdefault(int(nd.vertex[i]), 0)
                introduced[int(nd.vertex[i])] += 1
            elif kind == "forget":
                forgotten.setdefault(int(nd.vertex[i]), 0)
                forgotten[int(nd.vertex[i])] += 1
        # Every vertex is introduced at least once and forgotten at least
        # once (ends at the empty root bag).
        for v in range(g.n):
            assert introduced.get(v, 0) >= 1
            assert forgotten.get(v, 0) >= 1
