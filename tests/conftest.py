"""Suite-wide configuration.

Hypothesis deadlines are disabled globally: the suite runs CPU-heavy
pipelines on shared single-core CI containers, where per-example wall-clock
deadlines only produce flakes (correctness is asserted explicitly, never by
timing).
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
