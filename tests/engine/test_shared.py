"""Shared-subpattern batch tests: canonicalization, chain/lattice
sharing, the vectorized extension matcher vs a brute-force oracle,
shared-vs-per-pattern verdict equality, duplicate-query dedup and the
dense-piece fallback."""

from itertools import permutations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import TargetSession
from repro.engine.shared import (
    OCCURRENCE_CAP,
    canonical_form,
    extend_table,
    pattern_chain,
)
from repro.graphs import Graph, grid_graph
from repro.isomorphism import (
    cycle_pattern,
    decide_subgraph_isomorphism,
    diamond,
    path_pattern,
    star_pattern,
    triangle,
)
from repro.isomorphism.pattern import Pattern
from repro.planar import embed_geometric
from repro.pram import Cost


def _grid(rows, cols):
    gg = grid_graph(rows, cols)
    emb, _ = embed_geometric(gg)
    return gg.graph, emb


def _relabel(graph: Graph, perm) -> Graph:
    return Graph(
        graph.n, [(perm[u], perm[v]) for u, v in graph.iter_edges()]
    )


class TestCanonicalForm:
    @given(
        k=st.integers(2, 6),
        edge_bits=st.integers(0, 2**15 - 1),
        perm_seed=st.integers(0, 10_000),
    )
    @settings(max_examples=60)
    def test_relabelling_invariant(self, k, edge_bits, perm_seed):
        pairs = [(u, v) for u in range(k) for v in range(u + 1, k)]
        edges = [
            pair for i, pair in enumerate(pairs) if edge_bits >> i & 1
        ]
        graph = Graph(k, edges)
        perm = list(np.random.default_rng(perm_seed).permutation(k))
        canon, _ = canonical_form(graph)
        canon2, _ = canonical_form(_relabel(graph, perm))
        assert canon == canon2

    def test_distinguishes_non_isomorphic(self):
        assert (
            canonical_form(path_pattern(4).graph)[0]
            != canonical_form(star_pattern(3).graph)[0]
        )
        assert (
            canonical_form(cycle_pattern(4).graph)[0]
            != canonical_form(diamond().graph)[0]
        )

    def test_perm_reorders_to_canonical_positions(self):
        graph = path_pattern(3).graph
        canon, perm = canonical_form(graph)
        # perm maps vertex -> canonical position; re-deriving the code
        # under that relabelling must reproduce the canonical code.
        relabeled = _relabel(graph, perm)
        assert canonical_form(relabeled)[0] == canon

    def test_too_large_rejected(self):
        with pytest.raises(ValueError, match="at most"):
            canonical_form(path_pattern(9).graph)


class TestPatternChain:
    @pytest.mark.parametrize(
        "pattern",
        [
            triangle(), path_pattern(4), cycle_pattern(4),
            cycle_pattern(6), star_pattern(3), diamond(),
        ],
        ids=["K3", "P4", "C4", "C6", "star3", "diamond"],
    )
    def test_chain_shape(self, pattern):
        chain = pattern_chain(pattern)
        assert len(chain) == pattern.k
        assert [lvl.size for lvl in chain] == list(range(1, pattern.k + 1))
        assert chain[-1].canon == canonical_form(pattern.graph)[0]
        for lvl in chain[1:]:
            assert lvl.attach  # connectivity-preserving addition order
            assert set(lvl.verts[:-1]) == set(chain[lvl.size - 2].verts)
        assert pattern_chain(pattern) is chain  # memoized on the object

    def test_cycles_funnel_through_shared_path_prefixes(self):
        chains = {k: pattern_chain(cycle_pattern(k)) for k in (4, 5, 6, 7)}
        for k in (5, 6, 7):
            # Every proper prefix of a cycle chain is a path, so all
            # cycle chains share canonical nodes up to the shortest one.
            for i in range(3):
                assert chains[k][i].canon == chains[4][i].canon

    def test_isomorphic_patterns_share_whole_chain(self):
        scrambled = Pattern(Graph(4, [(0, 2), (2, 1), (1, 3)]))
        assert [lvl.canon for lvl in pattern_chain(scrambled)] == [
            lvl.canon for lvl in pattern_chain(path_pattern(4))
        ]

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError, match="connected"):
            pattern_chain(Pattern(Graph(4, [(0, 1), (2, 3)])))


def _oracle_tables(graph: Graph, pattern: Pattern):
    """All injective maps of the pattern into the graph, by brute force,
    as sorted row tuples (column j = image of pattern vertex j)."""
    rows = []
    for image in permutations(range(graph.n), pattern.k):
        if all(
            graph.has_edge(image[u], image[v])
            for u, v in pattern.graph.iter_edges()
        ):
            rows.append(tuple(image))
    return sorted(rows)


class TestExtendTable:
    @pytest.mark.parametrize(
        "pattern",
        [path_pattern(3), triangle(), path_pattern(4), cycle_pattern(4)],
        ids=["P3", "K3", "P4", "C4"],
    )
    def test_matches_brute_force_oracle(self, pattern):
        graph, _ = _grid(3, 3)
        if pattern is triangle():
            graph = Graph(4, [(0, 1), (0, 2), (0, 3), (1, 2), (2, 3)])
        # Build the table level by level along the pattern's own vertex
        # order 0..k-1 (valid for these patterns: every prefix connects).
        table = np.arange(graph.n, dtype=np.int64)[:, None]
        for v in range(1, pattern.k):
            attach = [u for u in pattern.neighbors(v) if u < v]
            table, work = extend_table(graph, table, attach)
            assert work > 0
        assert sorted(map(tuple, table)) == _oracle_tables(graph, pattern)

    def test_empty_input_and_empty_result(self):
        graph = Graph(3, [(0, 1)])
        empty = np.empty((0, 1), dtype=np.int64)
        out, work = extend_table(graph, empty, [0])
        assert out.shape == (0, 2) and work >= 1
        isolated = np.array([[2]], dtype=np.int64)  # vertex 2 has no edges
        out, work = extend_table(graph, isolated, [0])
        assert out.shape == (0, 2)

    def test_cap_raises(self):
        from repro.engine.shared import CapExceeded

        graph, _ = _grid(4, 4)
        table = np.arange(graph.n, dtype=np.int64)[:, None]
        with pytest.raises(CapExceeded):
            extend_table(graph, table, [0], cap=3)


class TestSharedBatch:
    PATTERNS = [
        cycle_pattern(4),
        cycle_pattern(5),  # odd cycle: structurally absent in the grid
        cycle_pattern(6),
        path_pattern(4),
    ]

    def test_verdicts_match_per_pattern_path(self):
        graph, emb = _grid(8, 8)
        session = TargetSession(graph, emb)
        batch = session.decide_batch(self.PATTERNS, seed=0, plan="auto")
        assert batch.shared
        expected = [
            decide_subgraph_isomorphism(graph, emb, p, seed=0).found
            for p in self.PATTERNS
        ]
        assert [r.found for r in batch.results] == expected
        assert expected == [True, False, True, True]

    def test_witnesses_are_valid_embeddings(self):
        graph, emb = _grid(8, 8)
        session = TargetSession(graph, emb)
        batch = session.decide_batch(
            self.PATTERNS, seed=0, plan="auto", want_witness=True
        )
        for pattern, result in zip(self.PATTERNS, batch.results):
            if not result.found:
                assert result.witness is None
                continue
            witness = result.witness
            assert len(set(witness.values())) == pattern.k  # injective
            for u, v in pattern.graph.iter_edges():
                assert graph.has_edge(witness[u], witness[v])

    def test_batch_cost_accounting(self):
        graph, emb = _grid(8, 8)
        session = TargetSession(graph, emb)
        batch = session.decide_batch(self.PATTERNS, seed=0, plan="auto")
        assert batch.cost.work > 0
        assert 0 <= batch.cost.depth <= batch.cost.work
        assert batch.trace is not None
        for result in batch.results:
            assert result.cost == Cost.zero()  # charged at batch level
            assert result.amortized
        assert batch.amortized_queries == len(self.PATTERNS)

    def test_repeat_batch_is_warm(self):
        graph, emb = _grid(8, 8)
        session = TargetSession(graph, emb)
        cold = session.decide_batch(self.PATTERNS, seed=0, plan="auto")
        warm = session.decide_batch(self.PATTERNS, seed=0, plan="auto")
        assert [r.found for r in warm.results] == [
            r.found for r in cold.results
        ]
        # Covers and every shared subpattern table come from the session
        # store the second time round.
        assert warm.cost.work < cold.cost.work / 2
        assert warm.cold_equivalent_cost.work > warm.cost.work

    def test_dense_cap_fallback_keeps_verdicts(self):
        graph, emb = _grid(6, 6)
        session = TargetSession(graph, emb)
        shared = session.decide_batch(self.PATTERNS, seed=0, plan="auto")
        tiny_cap = session_fallback = TargetSession(graph, emb)
        fallback = session_fallback.decide_batch(
            self.PATTERNS, seed=0, plan="auto", cap=8
        )
        assert tiny_cap is session_fallback
        assert [r.found for r in fallback.results] == [
            r.found for r in shared.results
        ]

    def test_single_unique_pattern_stays_on_per_pattern_path(self):
        graph, emb = _grid(5, 5)
        session = TargetSession(graph, emb)
        batch = session.decide_batch(
            [cycle_pattern(4), cycle_pattern(4)], seed=0, plan="auto"
        )
        assert not batch.shared  # sharing needs >= 2 distinct patterns
        assert batch.deduped_queries == 1


class TestBatchDedup:
    def test_duplicates_fan_out_in_input_order(self):
        graph, emb = _grid(6, 6)
        session = TargetSession(graph, emb)
        patterns = [
            cycle_pattern(4), path_pattern(4), cycle_pattern(4),
            cycle_pattern(4), path_pattern(4),
        ]
        batch = session.decide_batch(patterns, seed=0)
        assert batch.deduped_queries == 3
        assert batch.results[0].found == batch.results[2].found
        assert batch.results[0].witness == batch.results[2].witness
        assert batch.results[1].found == batch.results[4].found
        for dup in (batch.results[2], batch.results[3], batch.results[4]):
            assert dup.cost == Cost.zero()
            assert dup.amortized
            assert dup.trace.cost == dup.cost
        # Every duplicate still carries the cold-equivalent charge.
        assert batch.results[2].cold_equivalent_cost.work > 0
        assert batch.cache_stats["hits"]["batch-dedup"] == 3

    def test_dedup_counts_in_cache_stats(self):
        graph, emb = _grid(5, 5)
        session = TargetSession(graph, emb)
        session.decide_batch([triangle(), triangle()], seed=0)
        stats = session.stats.as_dict()
        assert stats["hits"]["batch-dedup"] == 1
        assert stats["saved_work"] >= 0

    def test_batch_cost_equals_sum_of_result_costs(self):
        graph, emb = _grid(6, 6)
        session = TargetSession(graph, emb)
        patterns = [cycle_pattern(4), cycle_pattern(4), path_pattern(4)]
        batch = session.decide_batch(patterns, seed=0)
        total = Cost.zero()
        for result in batch.results:
            total = total + result.cost
        assert batch.cost == total
