"""Query planner tests: estimator monotonicity, plan resolution and
override precedence, workload regret vs the best manual variant, and
planner-vs-manual result equality across all six drivers."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.connectivity import planar_vertex_connectivity
from repro.engine import ColdArtifacts, TargetSession
from repro.engine.planner import (
    MODES,
    CostModel,
    QueryPlan,
    QueryStats,
    apply_plan,
    gather_stats,
    plan_query,
    resolve_plan,
)
from repro.graphs import Graph, grid_graph, wheel_graph
from repro.isomorphism import (
    count_occurrences_exact,
    cycle_pattern,
    decide_subgraph_isomorphism,
    diamond,
    list_occurrences,
    path_pattern,
    star_pattern,
    triangle,
)
from repro.isomorphism.disconnected import decide_disconnected
from repro.isomorphism.pattern import Pattern
from repro.planar import embed_geometric, embed_planar
from repro.separating.driver import decide_separating_isomorphism

PROCESSORS = 256


def _grid(rows, cols):
    gg = grid_graph(rows, cols)
    emb, _ = embed_geometric(gg)
    return gg.graph, emb


def _stats(n, k, d, sub, mode="decide", rounds=8):
    width = 2 * d + 1
    bits = k * max(1, math.ceil(math.log2(width + 2)))
    return QueryStats(
        n=n, m=3 * n, k=k, d=d, subpatterns=sub, mode=mode,
        rounds=rounds, packed_bits=bits, overflow_risk=False,
    )


class TestEstimatorMonotonicity:
    @given(
        n=st.integers(16, 100_000),
        delta=st.integers(1, 100_000),
        engine=st.sampled_from(["parallel", "sequential"]),
    )
    @settings(max_examples=60)
    def test_monotone_in_n(self, n, delta, engine):
        model = CostModel()
        lo = model.estimate(_stats(n, 4, 2, 13), engine, warm=False)
        hi = model.estimate(_stats(n + delta, 4, 2, 13), engine, warm=False)
        assert hi.work >= lo.work
        assert hi.depth >= lo.depth

    @given(
        k=st.integers(2, 7),
        engine=st.sampled_from(["parallel", "sequential"]),
    )
    @settings(max_examples=30)
    def test_monotone_in_pattern_size(self, k, engine):
        model = CostModel()

        def est(kk):
            pat = path_pattern(kk)
            return model.estimate(
                _stats(
                    1024, kk, pat.diameter(),
                    pat.connected_subpattern_count(),
                ),
                engine,
                warm=False,
            )

        assert est(k + 1).work >= est(k).work


class TestGatherStats:
    def test_cold_stats(self):
        graph, emb = _grid(6, 6)
        stats = gather_stats(
            ColdArtifacts(graph, emb), cycle_pattern(4), "decide", rounds=3
        )
        assert stats.n == 36 and stats.k == 4 and stats.d == 2
        assert stats.subpatterns == 13  # |C(C4)|
        assert stats.rounds == 3
        assert stats.warm_cover_rounds == 0
        assert not stats.warm_piece_kinds

    def test_warm_stats_see_cached_artifacts(self):
        graph, emb = _grid(6, 6)
        session = TargetSession(graph, emb)
        session.decide(cycle_pattern(4), seed=0, rounds=2)
        stats = gather_stats(
            session, cycle_pattern(4), "decide", seed=0, rounds=2
        )
        # The positive query may exit before exhausting its rounds, so at
        # least one cover (not necessarily all) is warm.
        assert stats.warm_cover_rounds >= 1
        assert stats.cluster_width is not None
        assert any(eng == "parallel" for eng, _ in stats.warm_piece_kinds)

    def test_unknown_mode_rejected(self):
        graph, emb = _grid(4, 4)
        with pytest.raises(ValueError, match="unknown query mode"):
            gather_stats(ColdArtifacts(graph, emb), triangle(), "nope")


class TestPlanResolution:
    def test_manual_and_none_mean_no_plan(self):
        graph, emb = _grid(4, 4)
        provider = ColdArtifacts(graph, emb)
        for spec in (None, "manual"):
            assert resolve_plan(spec, provider, triangle(), "decide") is None

    def test_bad_plan_spec_rejected(self):
        graph, emb = _grid(4, 4)
        with pytest.raises(ValueError, match="plan must be"):
            resolve_plan(
                "fastest", ColdArtifacts(graph, emb), triangle(), "decide"
            )

    def test_auto_builds_explainable_plan(self):
        graph, emb = _grid(8, 8)
        plan = plan_query(
            ColdArtifacts(graph, emb), cycle_pattern(4), "decide",
            processors=PROCESSORS,
        )
        assert isinstance(plan, QueryPlan)
        assert plan.engine in ("parallel", "sequential")
        assert plan.kernel == "packed"
        assert plan.cover == MODES["decide"] == "kd"
        assert plan.predicted.work > 0
        assert plan.predicted_time >= plan.predicted.depth
        assert plan.alternatives  # the rejected engine is reported
        text = plan.explain()
        assert "variant=" in text and "predicted cost" in text
        assert set(plan.predicted_phases) == {"embed", "cover", "dp"}

    def test_overflow_risk_selects_reference_kernel(self):
        graph, emb = _grid(8, 8)
        # A star with many leaves has diameter 2 but enough vertices to
        # blow the 60-bit packed budget (k * ceil(log2(w+2)) bits).
        plan = plan_query(
            ColdArtifacts(graph, emb), star_pattern(24), "decide"
        )
        assert plan.stats.overflow_risk
        assert plan.kernel == "reference"

    def test_explicit_arguments_override_plan(self):
        graph, emb = _grid(6, 6)
        provider = ColdArtifacts(graph, emb)
        plan = plan_query(provider, cycle_pattern(4), "decide")
        other = (
            "sequential" if plan.engine == "parallel" else "parallel"
        )
        plan_obj, engine, kernel, backend = apply_plan(
            plan, provider, cycle_pattern(4), "decide", 0, None,
            other, None, None,
        )
        assert plan_obj is plan
        assert engine == other  # explicit wins
        assert kernel == plan.kernel  # unset falls back to the plan
        assert backend == plan.backend

    def test_no_plan_falls_back_to_driver_defaults(self):
        graph, emb = _grid(6, 6)
        provider = ColdArtifacts(graph, emb)
        plan_obj, engine, kernel, backend = apply_plan(
            None, provider, cycle_pattern(4), "decide", 0, None,
            None, None, None, default_engine="sequential",
        )
        assert plan_obj is None
        assert engine == "sequential"
        assert kernel == "packed"
        assert backend == "serial"


class TestCalibration:
    def test_observation_scales_future_estimates(self):
        model = CostModel()
        stats = _stats(256, 4, 2, 13)
        before = model.estimate(stats, "sequential", warm=False)
        model.observe(
            stats, "sequential", False,
            actual=type(before)(before.work * 2, before.depth * 2),
        )
        after = model.estimate(stats, "sequential", warm=False)
        assert after.work > before.work
        assert model.observations == 1
        snap = model.calibration()
        assert snap["work_ratio"]["decide/sequential"] > 1.0

    def test_ratio_band_clamps_outliers(self):
        model = CostModel()
        stats = _stats(256, 4, 2, 13)
        before = model.estimate(stats, "sequential", warm=False)
        model.observe(
            stats, "sequential", False,
            actual=type(before)(before.work * 1000, before.depth),
        )
        after = model.estimate(stats, "sequential", warm=False)
        assert after.work <= before.work * model.ratio_band[1] + 1

    def test_record_actual_feeds_model_and_error(self):
        graph, emb = _grid(8, 8)
        provider = ColdArtifacts(graph, emb)
        result = decide_subgraph_isomorphism(
            graph, emb, cycle_pattern(4), seed=0, rounds=2,
            artifacts=provider, plan="auto",
        )
        assert result.plan is not None
        assert result.plan.actual == result.cost
        assert result.plan.prediction_error is not None
        assert provider.cost_model.observations >= 1
        as_dict = result.plan.as_dict()
        assert as_dict["actual_work"] == result.cost.work


class TestWorkloadRegret:
    def test_auto_within_1_2x_of_best_manual(self):
        """Mixed 16-query workload: the planner's charged trace-cost at
        P=256 stays within 1.2x of the best manual engine in aggregate,
        and per query once the online calibration has warmed up (the
        first half of the workload is the cold-start transient where the
        EMA corrections are still settling)."""
        graph, emb = _grid(16, 16)
        patterns = [
            cycle_pattern(4), path_pattern(4), diamond(), triangle(),
            cycle_pattern(6), path_pattern(5), star_pattern(3),
            cycle_pattern(5),
        ] * 2
        auto_provider = ColdArtifacts(graph, emb)
        auto_total = 0
        best_total = 0
        for i, pattern in enumerate(patterns):
            manual = {}
            for engine in ("parallel", "sequential"):
                res = decide_subgraph_isomorphism(
                    graph, emb, pattern, seed=i, rounds=2, engine=engine,
                )
                manual[engine] = res.cost.brent_time(PROCESSORS)
            auto = decide_subgraph_isomorphism(
                graph, emb, pattern, seed=i, rounds=2,
                artifacts=auto_provider, plan="auto",
            )
            best = min(manual.values())
            t_auto = auto.cost.brent_time(PROCESSORS)
            auto_total += t_auto
            best_total += best
            if i >= len(patterns) // 2:
                assert t_auto <= 1.25 * best, (
                    f"warmed-up query {i} ({pattern.k}-vertex): auto "
                    f"chose {auto.plan.engine} with T_P={t_auto} vs best "
                    f"manual {best} ({manual})"
                )
        assert auto_total <= 1.2 * best_total, (
            f"workload regret {auto_total / best_total:.3f}x > 1.2x"
        )
        assert auto_provider.cost_model.observations == len(patterns)

    def test_committed_priors_tighten_cold_start_regret(self):
        """A fresh CostModel seeded from the committed BENCH_PR7 priors
        starts in the converged regime, so the cold half of the workload
        — previously a documented transient where the planner explores
        the parallel engine at 1.4-1.8x regret — must come out strictly
        cheaper than with a deliberately uncalibrated model, and the
        very first query's regret must be no worse."""
        graph, emb = _grid(16, 16)
        patterns = [
            cycle_pattern(4), path_pattern(4), diamond(), triangle(),
            cycle_pattern(6), path_pattern(5), star_pattern(3),
            cycle_pattern(5),
        ]
        best = []
        for i, pattern in enumerate(patterns):
            times = []
            for engine in ("parallel", "sequential"):
                res = decide_subgraph_isomorphism(
                    graph, emb, pattern, seed=i, rounds=2, engine=engine,
                )
                times.append(res.cost.brent_time(PROCESSORS))
            best.append(min(times))
        outcomes = {}
        for label, priors in (("seeded", None), ("uncalibrated", {})):
            provider = ColdArtifacts(graph, emb)
            provider.cost_model = CostModel(priors=priors)
            assert provider.cost_model.observations == 0
            regrets = []
            for i, pattern in enumerate(patterns):
                auto = decide_subgraph_isomorphism(
                    graph, emb, pattern, seed=i, rounds=2,
                    artifacts=provider, plan="auto",
                )
                regrets.append(
                    auto.cost.brent_time(PROCESSORS) / best[i]
                )
            outcomes[label] = regrets
        assert outcomes["seeded"][0] <= outcomes["uncalibrated"][0], (
            f"priors worsened first-query regret: {outcomes}"
        )
        assert sum(outcomes["seeded"]) < sum(outcomes["uncalibrated"]), (
            f"priors did not tighten cold-start regret: {outcomes}"
        )
        # The seeded cold half never pays an exploration spike.
        assert max(outcomes["seeded"]) <= 1.25, (
            f"seeded cold-start regret spike: {outcomes['seeded']}"
        )

    def test_prior_seeding_scales_each_engine_by_its_own_ratio(self):
        """Each committed (mode, engine) prior seeds that engine's own
        correction, and an engine absent from the priors still inherits
        the mode-level mean through ``_mode_prior``."""
        from repro.engine.planner import DEFAULT_PRIORS

        seeded = CostModel()
        bare = CostModel(priors={})
        stats = _stats(1024, 4, 2, 13)
        for engine in ("parallel", "sequential"):
            w_prior, _ = DEFAULT_PRIORS[("decide", engine)]
            est_seeded = seeded.estimate(stats, engine, warm=False)
            est_bare = bare.estimate(stats, engine, warm=False)
            assert est_seeded.work == pytest.approx(
                int(est_bare.work * w_prior), rel=0.01
            )
        # An engine left out of the committed priors projects the mean.
        partial = CostModel(priors={("decide", "sequential"): (1.5, 1.0)})
        est_partial = partial.estimate(stats, "parallel", warm=False)
        est_bare = bare.estimate(stats, "parallel", warm=False)
        assert est_partial.work == pytest.approx(
            int(est_bare.work * 1.5), rel=0.01
        )


class TestPlannerVsManualEquality:
    """plan='auto' must agree with the manual default run for every
    driver (identical seed schedule; engines are verdict-equivalent)."""

    def test_decide(self):
        graph, emb = _grid(8, 8)
        for pattern in (cycle_pattern(4), cycle_pattern(5), diamond()):
            manual = decide_subgraph_isomorphism(
                graph, emb, pattern, seed=1, rounds=4
            )
            auto = decide_subgraph_isomorphism(
                graph, emb, pattern, seed=1, rounds=4, plan="auto"
            )
            assert auto.found == manual.found
            assert auto.rounds_used == manual.rounds_used

    def test_list(self):
        graph, emb = _grid(4, 4)
        pattern = cycle_pattern(4)
        manual = list_occurrences(graph, emb, pattern, seed=2)
        auto = list_occurrences(graph, emb, pattern, seed=2, plan="auto")
        assert auto.occurrences == manual.occurrences

    def test_count_exact(self):
        graph, emb = _grid(5, 5)
        pattern = cycle_pattern(4)
        manual = count_occurrences_exact(graph, emb, pattern)
        auto = count_occurrences_exact(graph, emb, pattern, plan="auto")
        assert auto.isomorphisms == manual.isomorphisms
        assert auto.plan is not None and auto.plan.mode == "count"

    def test_separating(self):
        graph, emb = _grid(6, 6)
        marked = np.zeros(graph.n, dtype=bool)
        marked[0] = marked[graph.n - 1] = True
        pattern = cycle_pattern(4)
        manual = decide_separating_isomorphism(
            graph, emb, marked, pattern, seed=3, rounds=4
        )
        auto = decide_separating_isomorphism(
            graph, emb, marked, pattern, seed=3, rounds=4, plan="auto"
        )
        assert auto.found == manual.found
        assert auto.plan is not None and auto.plan.cover == "separating"

    def test_vc(self):
        gg = wheel_graph(6)
        emb, _ = embed_geometric(gg)
        manual = planar_vertex_connectivity(gg.graph, emb, rounds=2)
        auto = planar_vertex_connectivity(
            gg.graph, emb, rounds=2, plan="auto"
        )
        assert auto.connectivity == manual.connectivity
        assert auto.plan is not None and auto.plan.mode == "vc"

    def test_disconnected(self):
        graph, emb = _grid(5, 5)
        two_edges = Pattern(Graph(4, [(0, 1), (2, 3)]))
        manual = decide_disconnected(
            graph, emb, two_edges, seed=4, colorings=8
        )
        auto = decide_disconnected(
            graph, emb, two_edges, seed=4, colorings=8, plan="auto"
        )
        assert auto.found == manual.found
        assert auto.plan is not None
