"""Target-session engine tests: cache-key soundness, cost accounting and
session ≡ one-shot equivalence for every refactored driver."""

import numpy as np
from hypothesis import given, note, settings
from hypothesis import strategies as st

from repro.baselines import count_isomorphisms
from repro.connectivity import planar_vertex_connectivity
from repro.engine import ColdArtifacts, TargetSession, graph_fingerprint
from repro.graphs import (
    Graph,
    grid_graph,
    outerplanar_graph,
    random_tree,
    wheel_graph,
)
from repro.isomorphism import (
    count_occurrences_exact,
    cycle_pattern,
    decide_subgraph_isomorphism,
    diamond,
    find_occurrence,
    list_occurrences,
    path_pattern,
    star_pattern,
    triangle,
)
from repro.planar import embed_geometric, embed_planar
from repro.pram import Cost
from repro.separating.driver import decide_separating_isomorphism


def _grid(rows, cols):
    gg = grid_graph(rows, cols)
    emb, _ = embed_geometric(gg)
    return gg.graph, emb


def _cover_bytes(cover):
    """Canonical byte serialization of a treewidth cover (piece graphs,
    original-vertex maps and decomposition bags)."""
    chunks = []
    for piece in cover.pieces:
        chunks.append(np.asarray(piece.graph.edges(), dtype=np.int64).tobytes())
        chunks.append(np.asarray(piece.originals, dtype=np.int64).tobytes())
        td = piece.decomposition
        chunks.append(np.asarray(td.parent, dtype=np.int64).tobytes())
        for bag in td.bags:
            chunks.append(np.asarray(bag, dtype=np.int64).tobytes())
    return b"".join(chunks)


class TestKeySoundness:
    def test_target_mutation_disjoint_key_space(self):
        graph, emb = _grid(5, 5)
        s1 = TargetSession(graph, emb)
        s1.decide(cycle_pattern(4), seed=3)
        s1.count_exact(triangle())

        # Mutate the target: drop one edge (stays planar/embeddable).
        edges = graph.edges()
        mutated = Graph(graph.n, edges[:-1])
        s2 = TargetSession(mutated, embed_planar(mutated))
        s2.decide(cycle_pattern(4), seed=3)
        s2.count_exact(triangle())

        k1, k2 = set(s1.derived_keys()), set(s2.derived_keys())
        assert k1 and k2
        assert not (k1 & k2)

    @given(n=st.integers(4, 24), seed=st.integers(0, 10_000))
    @settings(max_examples=25)
    def test_any_tree_mutation_changes_every_key(self, n, seed):
        note(f"tree n={n} seed={seed}")
        tree = random_tree(n, seed=seed)
        emb = embed_planar(tree)
        s1 = TargetSession(tree, emb)
        s1.decide(path_pattern(3), seed=seed, rounds=1)

        mutated = Graph(
            tree.n + 1,
            [tuple(e) for e in tree.edges()] + [(tree.n - 1, tree.n)],
        )
        s2 = TargetSession(mutated, embed_planar(mutated))
        s2.decide(path_pattern(3), seed=seed, rounds=1)
        assert not (set(s1.derived_keys()) & set(s2.derived_keys()))

    def test_equal_seeds_byte_identical_covers(self):
        graph, emb = _grid(6, 6)
        a = TargetSession(graph, emb)
        b = TargetSession(graph, emb)
        from repro.pram import Tracer

        ca = a.cover(4, 2, 17, Tracer("a"))
        cb = b.cover(4, 2, 17, Tracer("b"))
        assert _cover_bytes(ca) == _cover_bytes(cb)
        # ... and a cache hit returns the same object.
        assert a.cover(4, 2, 17, Tracer("a2")) is ca

    def test_different_seed_different_key(self):
        graph, emb = _grid(5, 5)
        s = TargetSession(graph, emb)
        from repro.pram import Tracer

        s.cover(4, 2, 1, Tracer("t"))
        s.cover(4, 2, 2, Tracer("t"))
        cover_keys = [k for k in s.derived_keys() if k[0] == "cover"]
        assert len(cover_keys) == len(set(cover_keys)) == 2

    def test_graph_fingerprint_sensitivity(self):
        g1 = Graph(4, [(0, 1), (1, 2), (2, 3)])
        g2 = Graph(4, [(0, 1), (1, 2), (1, 3)])
        g3 = Graph(5, [(0, 1), (1, 2), (2, 3)])
        fps = {graph_fingerprint(g) for g in (g1, g2, g3)}
        assert len(fps) == 3

    def test_invalidate_drops_keys_keeps_stats(self):
        graph, emb = _grid(5, 5)
        s = TargetSession(graph, emb)
        s.decide(cycle_pattern(4), seed=0)
        misses_before = s.stats.miss_count
        assert s.derived_keys()
        s.invalidate()
        assert not s.derived_keys()
        assert s.stats.miss_count == misses_before
        # Rebuilding after invalidation is a miss again, not a hit.
        hits_before = s.stats.hit_count
        r = s.decide(cycle_pattern(4), seed=0)
        assert r.found
        assert s.stats.miss_count > misses_before
        assert s.stats.hit_count == hits_before

    def test_invalidate_records_evictions(self):
        graph, emb = _grid(5, 5)
        s = TargetSession(graph, emb)
        assert s.stats.eviction_count == 0
        s.decide(cycle_pattern(4), seed=0)
        held = len(s.derived_keys())
        assert held > 0 and not s._children
        s.invalidate()
        # Every dropped entry is an eviction.
        assert s.stats.eviction_count == held
        assert set(s.stats.evictions) <= set(s.stats.misses)
        evicted_once = s.stats.eviction_count
        # Invalidate-then-rebuild accounting: the rebuild re-misses, a
        # second invalidate evicts the rebuilt entries again.
        s.decide(cycle_pattern(4), seed=0)
        s.invalidate()
        assert s.stats.eviction_count > evicted_once
        assert "cover" in s.stats.evictions
        d = s.stats.as_dict()
        assert d["eviction_count"] == s.stats.eviction_count
        assert d["evictions"] == s.stats.evictions
        assert "evicted" in s.stats.format()

    def test_invalidate_records_child_session_evictions(self):
        """The ("subsession", fp) keys held in _children are derived keys
        like any other: invalidate() must record them as evictions too, so
        evictions == derived_keys() exactly (the pool's LRU accounts by
        derived keys)."""
        gg = wheel_graph(6)
        emb, _ = embed_geometric(gg)
        s = TargetSession(gg.graph, emb)
        s.vertex_connectivity(seed=0, rounds=1)
        held = s.derived_keys()
        assert s._children, "vc should have built the G' sub-session"
        # derived_keys counts the child keys themselves plus everything
        # the children hold.
        assert len(held) > len(s._cache)
        s.invalidate()
        assert s.stats.eviction_count == len(held)
        assert s.stats.evictions.get("subsession", 0) == sum(
            1 for key in held if key[0] == "subsession"
        )


class TestSessionEqualsOneShot:
    PATTERNS = [
        cycle_pattern(4),
        path_pattern(4),
        star_pattern(3),
        diamond(),
        triangle(),
    ]

    def test_decide_parity_and_cost_invariants(self):
        graph, emb = _grid(6, 6)
        session = TargetSession(graph, emb)
        for i, pattern in enumerate(self.PATTERNS):
            cold = decide_subgraph_isomorphism(graph, emb, pattern, seed=7)
            warm = session.decide(pattern, seed=7)
            assert cold.found == warm.found
            assert cold.rounds_used == warm.rounds_used
            # One-shot results never amortize and report their own cost.
            assert not cold.amortized
            assert cold.cold_equivalent_cost == cold.cost
            # Session traces stay internally consistent ...
            assert warm.trace.cost == warm.cost
            # ... and the cold-equivalent work is exactly the one-shot work
            # (depth re-adds skipped charges sequentially: upper bound).
            assert warm.cold_equivalent_cost.work == cold.cost.work
            assert warm.cold_equivalent_cost.depth >= cold.cost.depth
            assert warm.cost.work <= cold.cost.work

    def test_find_occurrence_witness_parity(self):
        graph, emb = _grid(6, 6)
        session = TargetSession(graph, emb)
        cold = find_occurrence(graph, emb, cycle_pattern(4), seed=5)
        warm = session.find_occurrence(cycle_pattern(4), seed=5)
        assert cold.found and warm.found
        assert cold.witness == warm.witness

    def test_repeat_query_fully_amortized(self):
        graph, emb = _grid(6, 6)
        session = TargetSession(graph, emb)
        first = session.decide(diamond(), seed=11)
        second = session.decide(diamond(), seed=11)
        assert first.found == second.found
        assert first.rounds_used == second.rounds_used
        assert second.amortized
        assert second.cost.work < first.cold_equivalent_cost.work
        assert second.cold_equivalent_cost.work == \
            first.cold_equivalent_cost.work

    def test_listing_parity(self):
        graph, emb = _grid(5, 5)
        session = TargetSession(graph, emb)
        cold = list_occurrences(graph, emb, path_pattern(3), seed=2)
        warm = session.list_occurrences(path_pattern(3), seed=2)
        assert cold.witnesses == warm.witnesses
        assert cold.iterations == warm.iterations
        assert warm.trace.cost == warm.cost

    def test_exact_count_parity_and_oracle(self):
        graph, emb = _grid(5, 5)
        session = TargetSession(graph, emb)
        for pattern in (path_pattern(3), triangle(), cycle_pattern(4)):
            cold = count_occurrences_exact(graph, emb, pattern)
            warm = session.count_exact(pattern)
            assert cold.isomorphisms == warm.isomorphisms
            assert cold.isomorphisms == count_isomorphisms(pattern, graph)
            assert warm.cold_equivalent_cost.work == cold.cost.work

    def test_separating_parity(self):
        graph, emb = _grid(5, 5)
        marked = np.zeros(graph.n, dtype=bool)
        marked[[0, graph.n - 1]] = True
        session = TargetSession(graph, emb)
        cold = decide_separating_isomorphism(
            graph, emb, marked, cycle_pattern(4), seed=9
        )
        warm = session.decide_separating(marked, cycle_pattern(4), seed=9)
        assert cold.found == warm.found
        assert cold.rounds_used == warm.rounds_used
        assert warm.cold_equivalent_cost.work == cold.cost.work

    def test_vertex_connectivity_parity_and_subsession(self):
        gg = wheel_graph(8)
        emb, _ = embed_geometric(gg)
        session = TargetSession(gg.graph, emb)
        cold = planar_vertex_connectivity(gg.graph, emb, seed=1)
        warm = session.vertex_connectivity(seed=1)
        again = session.vertex_connectivity(seed=1)
        assert cold.connectivity == warm.connectivity == again.connectivity
        assert warm.cold_equivalent_cost.work == cold.cost.work
        # The repeat run serves G', its covers and decompositions from the
        # shared sub-session cache.
        assert again.amortized
        assert again.cost.work < cold.cost.work
        assert any(k[0] == "subsession" for k in session.derived_keys())


class TestBatch:
    def test_decide_batch_matches_one_shot(self):
        graph, emb = _grid(6, 6)
        patterns = [
            cycle_pattern(4), path_pattern(4), star_pattern(3), diamond(),
            cycle_pattern(4),  # repeat: fully amortized
        ]
        session = TargetSession(graph, emb)
        batch = session.decide_batch(patterns, seed=7)
        assert len(batch.results) == len(patterns)
        total = Cost.zero()
        for pattern, result in zip(patterns, batch.results):
            cold = decide_subgraph_isomorphism(graph, emb, pattern, seed=7)
            assert result.found == cold.found
            assert result.rounds_used == cold.rounds_used
            assert result.cold_equivalent_cost.work == cold.cost.work
            assert result.trace.cost == result.cost
            total = total + result.cost
        assert batch.cost == total
        assert batch.amortized
        assert batch.amortized_queries >= 2
        assert batch.cost.work < batch.cold_equivalent_cost.work
        assert batch.cache_stats["hit_count"] > 0

    def test_batch_empty(self):
        graph, emb = _grid(3, 3)
        batch = TargetSession(graph, emb).decide_batch([])
        assert batch.results == []
        assert batch.cost == Cost.zero()
        assert not batch.amortized


class TestColdProvider:
    def test_cold_artifacts_never_amortize(self):
        graph, emb = _grid(4, 4)
        cold = ColdArtifacts(graph, emb)
        mark = cold.amortization_mark()
        from repro.pram import Tracer

        cold.cover(3, 2, 0, Tracer("t"))
        hits, saved = cold.amortization_since(mark)
        assert hits == 0 and saved == Cost.zero()
        assert not cold.caching

    def test_session_embedding_computed_when_omitted(self):
        graph, _ = _grid(4, 4)
        session = TargetSession(graph)
        result = session.decide(triangle(), seed=0, rounds=2)
        assert not result.found  # grids are bipartite

    def test_outerplanar_session(self):
        gg = outerplanar_graph(14, seed=3)
        emb, _ = embed_geometric(gg)
        session = TargetSession(gg.graph, emb)
        cold = decide_subgraph_isomorphism(gg.graph, emb, triangle(), seed=4)
        warm = session.decide(triangle(), seed=4)
        assert cold.found == warm.found


class TestStats:
    def test_stats_surface(self):
        graph, emb = _grid(5, 5)
        session = TargetSession(graph, emb)
        session.decide(cycle_pattern(4), seed=0)
        session.decide(cycle_pattern(4), seed=0)
        d = session.stats.as_dict()
        assert d["hit_count"] == sum(d["hits"].values())
        assert d["miss_count"] == sum(d["misses"].values())
        assert d["hit_count"] > 0 and d["miss_count"] > 0
        assert d["saved_work"] > 0
        assert d["built_work"] > 0
        text = session.stats.format()
        assert "cover" in text and "hits" in text

    def test_hit_leaves_charge_zero_and_carry_counters(self):
        graph, emb = _grid(5, 5)
        session = TargetSession(graph, emb)
        session.decide(star_pattern(3), seed=1)
        warm = session.decide(star_pattern(3), seed=1)

        cached_leaves = []

        def walk(span):
            if span.name.endswith("-cached"):
                cached_leaves.append(span)
            for child in span.children:
                walk(child)

        walk(warm.trace)
        assert cached_leaves
        for leaf in cached_leaves:
            assert leaf.cost == Cost.zero()
            assert leaf.counters.get("amortized") == 1
            assert leaf.counters.get("saved_work", 0) >= 0
