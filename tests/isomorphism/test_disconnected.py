"""Lemma 4.1 tests: disconnected patterns by random coloring."""


from repro.graphs import Graph, grid_graph, path_graph, triangulated_grid
from repro.isomorphism import Pattern, decide_disconnected, triangle
from repro.planar import embed_geometric


def two_triangles():
    return Pattern(
        Graph(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
    )


def edge_plus_isolated():
    return Pattern(Graph(3, [(0, 1)]))


def three_singletons():
    return Pattern(Graph(3, []))


class TestDisconnected:
    def test_two_triangles_found(self):
        gg = triangulated_grid(8, 8)
        emb, _ = embed_geometric(gg)
        result = decide_disconnected(
            gg.graph, emb, two_triangles(), seed=0, colorings=200
        )
        assert result.found

    def test_witness_valid(self):
        gg = triangulated_grid(7, 7)
        emb, _ = embed_geometric(gg)
        pattern = two_triangles()
        result = decide_disconnected(
            gg.graph, emb, pattern, seed=1, colorings=200, want_witness=True
        )
        assert result.found and result.witness is not None
        w = result.witness
        assert len(w) == pattern.k
        assert len(set(w.values())) == pattern.k
        for a, b in pattern.graph.iter_edges():
            assert gg.graph.has_edge(w[a], w[b])

    def test_absent_pattern(self):
        gg = grid_graph(6, 6)  # triangle-free
        emb, _ = embed_geometric(gg)
        result = decide_disconnected(
            gg.graph, emb, two_triangles(), seed=2, colorings=30
        )
        assert not result.found

    def test_singletons(self):
        gg = path_graph(8)
        emb, _ = embed_geometric(gg)
        result = decide_disconnected(
            gg.graph, emb, three_singletons(), seed=3, colorings=100
        )
        assert result.found

    def test_connected_pattern_falls_through(self):
        gg = triangulated_grid(5, 5)
        emb, _ = embed_geometric(gg)
        result = decide_disconnected(gg.graph, emb, triangle(), seed=4)
        assert result.found and result.colorings_used == 1

    def test_edge_plus_isolated_vertex(self):
        gg = path_graph(6)
        emb, _ = embed_geometric(gg)
        result = decide_disconnected(
            gg.graph, emb, edge_plus_isolated(), seed=5, colorings=100,
            want_witness=True,
        )
        assert result.found
        w = result.witness
        assert gg.graph.has_edge(w[0], w[1])
        assert w[2] not in (w[0], w[1])

    def test_graph_too_small(self):
        gg = path_graph(3)
        emb, _ = embed_geometric(gg)
        result = decide_disconnected(
            gg.graph, emb, two_triangles(), seed=6, colorings=10
        )
        assert not result.found
