"""Core engine tests: sequential DP ≡ parallel DP ≡ backtracking oracle.

This is the load-bearing test file of the reproduction: Lemma 3.1's engine
must produce exactly the same valid partial matches (and hence the same
decisions, counts and witnesses) as Eppstein's sequential algorithm and as
exhaustive backtracking, across graph families, patterns, and decomposition
shapes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import count_isomorphisms, iter_isomorphisms
from repro.graphs import (
    Graph,
    cycle_graph,
    delaunay_graph,
    grid_graph,
    outerplanar_graph,
    path_graph,
    random_tree,
    triangulated_grid,
    wheel_graph,
)
from repro.isomorphism import (
    SubgraphStateSpace,
    clique_pattern,
    cycle_pattern,
    diamond,
    first_witness,
    iter_witnesses,
    parallel_dp,
    path_pattern,
    sequential_dp,
    star_pattern,
    triangle,
)
from repro.treedecomp import make_nice, minfill_decomposition


def engines(pattern, graph):
    td, _ = minfill_decomposition(graph)
    nice, _ = make_nice(td)
    space = SubgraphStateSpace(pattern, graph)
    return space, nice


TARGETS = [
    ("grid", grid_graph(4, 4).graph),
    ("tri-grid", triangulated_grid(3, 4).graph),
    ("cycle", cycle_graph(9).graph),
    ("path", path_graph(8).graph),
    ("wheel", wheel_graph(7).graph),
    ("tree", random_tree(14, seed=3)),
    ("outerplanar", outerplanar_graph(10, seed=1).graph),
    ("delaunay", delaunay_graph(16, seed=5).graph),
]

PATTERNS = [
    ("triangle", triangle()),
    ("p3", path_pattern(3)),
    ("p4", path_pattern(4)),
    ("c4", cycle_pattern(4)),
    ("star3", star_pattern(3)),
    ("k4", clique_pattern(4)),
    ("diamond", diamond()),
]


@pytest.mark.parametrize("tname,target", TARGETS, ids=[t[0] for t in TARGETS])
@pytest.mark.parametrize("pname,pattern", PATTERNS, ids=[p[0] for p in PATTERNS])
class TestEnginesAgree:
    def test_sequential_matches_oracle_count(self, tname, target, pname, pattern):
        space, nice = engines(pattern, target)
        result = sequential_dp(space, nice)
        expect = count_isomorphisms(pattern, target)
        assert result.accepting_count == expect
        assert result.found == (expect > 0)

    def test_parallel_matches_sequential_valid_sets(
        self, tname, target, pname, pattern
    ):
        space, nice = engines(pattern, target)
        seq = sequential_dp(space, nice)
        par = parallel_dp(space, nice)
        assert par.found == seq.found
        for node in range(nice.num_nodes):
            assert set(par.valid[node]) == set(seq.valid[node]), (
                f"valid sets differ at nice node {node}"
            )

    def test_witnesses_match_oracle(self, tname, target, pname, pattern):
        space, nice = engines(pattern, target)
        seq = sequential_dp(space, nice)
        ours = {tuple(sorted(w.items())) for w in iter_witnesses(space, nice, seq.valid)}
        oracle = {
            tuple(sorted(w.items()))
            for w in iter_isomorphisms(pattern, target)
        }
        assert ours == oracle


class TestWitnessRecovery:
    def test_witness_is_isomorphism(self):
        g = grid_graph(5, 5).graph
        pattern = cycle_pattern(4)
        space, nice = engines(pattern, g)
        seq = sequential_dp(space, nice)
        w = first_witness(space, nice, seq.valid)
        assert w is not None
        assert len(set(w.values())) == pattern.k
        for a, b in pattern.graph.iter_edges():
            assert g.has_edge(w[a], w[b])

    def test_no_witness_when_absent(self):
        g = random_tree(12, seed=0)  # no triangles in a tree
        space, nice = engines(triangle(), g)
        seq = sequential_dp(space, nice)
        assert not seq.found
        assert first_witness(space, nice, seq.valid) is None

    def test_witnesses_from_parallel_valid_sets(self):
        g = triangulated_grid(3, 3).graph
        pattern = triangle()
        space, nice = engines(pattern, g)
        par = parallel_dp(space, nice)
        ours = {
            tuple(sorted(w.items()))
            for w in iter_witnesses(space, nice, par.valid)
        }
        oracle = {
            tuple(sorted(w.items()))
            for w in iter_isomorphisms(pattern, g)
        }
        assert ours == oracle


class TestAllowedMask:
    def test_mask_restricts_matches(self):
        g = triangulated_grid(3, 3).graph
        allowed = np.ones(g.n, dtype=bool)
        allowed[0] = False  # forbid one corner
        pattern = triangle()
        space = SubgraphStateSpace(pattern, g, allowed=allowed)
        td, _ = minfill_decomposition(g)
        nice, _ = make_nice(td)
        seq = sequential_dp(space, nice)
        expect = count_isomorphisms(pattern, g, allowed=allowed)
        assert seq.accepting_count == expect
        for w in iter_witnesses(space, nice, seq.valid):
            assert 0 not in w.values()

    def test_all_forbidden(self):
        g = cycle_graph(5).graph
        allowed = np.zeros(g.n, dtype=bool)
        space = SubgraphStateSpace(path_pattern(2), g, allowed=allowed)
        td, _ = minfill_decomposition(g)
        nice, _ = make_nice(td)
        assert not sequential_dp(space, nice).found


class TestRandomized:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=4, max_value=12),
        st.integers(min_value=0, max_value=10**6),
        st.sampled_from(["triangle", "p3", "c4", "star3"]),
    )
    def test_random_graphs_all_engines(self, n, seed, pname):
        rng = np.random.default_rng(seed)
        edges = []
        for _ in range(2 * n):
            u, v = rng.integers(0, n, size=2)
            if u != v:
                edges.append((int(u), int(v)))
        g = Graph(n, edges)
        pattern = dict(PATTERNS)[pname]
        space, nice = engines(pattern, g)
        seq = sequential_dp(space, nice)
        par = parallel_dp(space, nice)
        expect = count_isomorphisms(pattern, g)
        assert seq.accepting_count == expect
        assert par.found == (expect > 0)
        assert sum(
            1 for _ in iter_witnesses(space, nice, par.valid)
        ) == expect


class TestCostShapes:
    def test_parallel_depth_beats_sequential_on_long_paths(self):
        # A long path graph: the minfill decomposition is a long chain; the
        # parallel engine's depth must be dramatically smaller.
        g = path_graph(300).graph
        pattern = path_pattern(3)
        space, nice = engines(pattern, g)
        seq = sequential_dp(space, nice)
        par = parallel_dp(space, nice)
        assert par.found and seq.found
        assert par.cost.depth < seq.cost.depth / 10

    def test_parallel_bfs_rounds_logarithmic(self):
        g = path_graph(400).graph
        pattern = path_pattern(3)
        space, nice = engines(pattern, g)
        par = parallel_dp(space, nice)
        # Lemma 3.3: O(k log n) hops.
        assert par.max_bfs_rounds <= 10 * pattern.k * np.log2(nice.num_nodes)

    def test_state_count_respects_paper_bound(self):
        g = grid_graph(4, 4).graph
        pattern = triangle()
        space, nice = engines(pattern, g)
        tau = nice.width()
        par = parallel_dp(space, nice)
        assert par.total_states <= nice.num_nodes * (tau + 3) ** pattern.k
