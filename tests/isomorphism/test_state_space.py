"""Unit tests for the plain (phi, C, U) state space transitions."""

import numpy as np
import pytest

from repro.graphs import Graph, cycle_graph, grid_graph
from repro.isomorphism import (
    IN_CHILD,
    UNMATCHED,
    SubgraphStateSpace,
    path_pattern,
    triangle,
)

U, C = UNMATCHED, IN_CHILD


def space_on(graph, pattern, **kw):
    return SubgraphStateSpace(pattern, graph, **kw)


class TestIntroduce:
    def test_yields_unused_and_extensions(self):
        g = Graph(3, [(0, 1), (1, 2)])
        sp = space_on(g, path_pattern(2))
        out = list(sp.introduce(0, (U, U)))
        assert (U, U) in out  # unused
        assert (0, U) in out and (U, 0) in out

    def test_edge_consistency(self):
        # Pattern edge (0,1); if pattern 0 is on target 0, pattern 1 can
        # only go on neighbors of target 0.
        g = Graph(3, [(0, 1)])  # target: 0-1, 2 isolated
        sp = space_on(g, path_pattern(2))
        out = list(sp.introduce(2, (0, U)))
        assert (0, 2) not in out  # 2 not adjacent to 0
        out2 = list(sp.introduce(1, (0, U)))
        assert (0, 1) in out2

    def test_blocked_by_forgotten_neighbor(self):
        # Pattern 1 already in C: pattern 0 (H-adjacent) cannot be newly
        # matched anymore (the edge could never be verified).
        g = Graph(2, [(0, 1)])
        sp = space_on(g, path_pattern(2))
        out = list(sp.introduce(0, (U, C)))
        assert out == [(U, C)]

    def test_allowed_mask(self):
        g = Graph(2, [(0, 1)])
        allowed = np.array([False, True])
        sp = space_on(g, path_pattern(1), allowed=allowed)
        assert list(sp.introduce(0, (U,))) == [(U,)]
        assert (1,) in list(sp.introduce(1, (U,)))


class TestForget:
    def test_moves_to_child(self):
        g = Graph(2, [(0, 1)])
        sp = space_on(g, path_pattern(2))
        assert sp.forget(0, (0, 1)) == (C, 1)

    def test_blocks_unrealized_edge(self):
        # Forgetting pattern 0's target while pattern 1 (H-adjacent) is
        # still unmatched kills the state.
        g = Graph(2, [(0, 1)])
        sp = space_on(g, path_pattern(2))
        assert sp.forget(0, (0, U)) is None

    def test_untouched_when_vertex_unused(self):
        g = Graph(2, [(0, 1)])
        sp = space_on(g, path_pattern(2))
        assert sp.forget(1, (0, U)) == (0, U)


class TestJoin:
    def test_agree_on_mapped(self):
        sp = space_on(Graph(3, [(0, 1), (1, 2)]), path_pattern(2))
        assert sp.join((0, U), (0, U)) == (0, U)
        assert sp.join((0, U), (1, U)) is None

    def test_child_exclusivity(self):
        sp = space_on(Graph(3, [(0, 1), (1, 2)]), path_pattern(2))
        assert sp.join((C, U), (U, U)) == (C, U)
        assert sp.join((C, U), (C, U)) is None
        assert sp.join((C, U), (U, C)) == (C, C)

    def test_mapped_vs_child_incompatible(self):
        sp = space_on(Graph(3, [(0, 1), (1, 2)]), path_pattern(2))
        assert sp.join((0, U), (C, U)) is None


class TestClassConstraints:
    def test_class_restricts_hosting(self):
        g = cycle_graph(4).graph
        classes = np.array([0, 1, 0, 1])
        sp = space_on(
            g, path_pattern(2),
            host_classes=classes, pattern_classes=[0, 1],
        )
        # Pattern vertex 0 (class 0) cannot sit on target 1 (class 1).
        out = list(sp.introduce(1, (U, U)))
        assert (1, U) not in out
        assert (U, 1) in out

    def test_class_validation(self):
        g = Graph(2, [(0, 1)])
        with pytest.raises(ValueError):
            SubgraphStateSpace(
                path_pattern(2), g, host_classes=np.zeros(2, dtype=int),
                pattern_classes=None,
            )
        with pytest.raises(ValueError):
            SubgraphStateSpace(
                path_pattern(2), g,
                host_classes=np.zeros(3, dtype=int),
                pattern_classes=[0, 0],
            )

    def test_decision_respects_classes(self):
        # A 4-cycle with proper 2-coloring: a P2 with both endpoints in
        # class 0 is impossible.
        g = cycle_graph(4).graph
        classes = np.array([0, 1, 0, 1])
        from repro.isomorphism import sequential_dp
        from repro.treedecomp import make_nice, minfill_decomposition

        td, _ = minfill_decomposition(g)
        nice, _ = make_nice(td)
        sp_bad = space_on(
            g, path_pattern(2),
            host_classes=classes, pattern_classes=[0, 0],
        )
        sp_good = space_on(
            g, path_pattern(2),
            host_classes=classes, pattern_classes=[0, 1],
        )
        assert not sequential_dp(sp_bad, nice).found
        assert sequential_dp(sp_good, nice).found


class TestLocalStates:
    def test_counts_within_paper_bound(self):
        g = grid_graph(3, 3).graph
        sp = space_on(g, triangle())
        bag = [0, 1, 3, 4]
        states = sp.local_states(bag)
        tau = len(bag) - 1
        assert 0 < len(states) <= (tau + 3) ** 3

    def test_no_duplicates(self):
        g = grid_graph(3, 3).graph
        sp = space_on(g, triangle())
        states = sp.local_states([0, 1, 3, 4])
        assert len(states) == len(set(states))

    def test_cache_returns_same(self):
        g = grid_graph(3, 3).graph
        sp = space_on(g, triangle())
        assert sp.local_states([0, 1]) is sp.local_states([0, 1])

    def test_respects_injectivity_and_edges(self):
        g = Graph(3, [(0, 1)])
        sp = space_on(g, path_pattern(2))
        for s in sp.local_states([0, 1, 2]):
            mapped = [x for x in s if x >= 0]
            assert len(mapped) == len(set(mapped))
            if s[0] >= 0 and s[1] >= 0:
                assert g.has_edge(s[0], s[1])


class TestAdmissibility:
    def test_c_capacity(self):
        sp = space_on(Graph(2, [(0, 1)]), path_pattern(2))
        assert sp.admissible_at((C, C), 2, False)
        assert not sp.admissible_at((C, C), 1, False)
        assert sp.admissible_at((U, U), 0, False)

    def test_trivial_source(self):
        sp = space_on(Graph(2, [(0, 1)]), path_pattern(2))
        assert sp.is_trivial_source((0, U))
        assert not sp.is_trivial_source((C, U))
