"""Theorem 2.4 tests: the Parallel Treewidth k-d Cover."""

import numpy as np
import pytest

from repro.baselines import iter_isomorphisms
from repro.graphs import (
    cycle_graph,
    delaunay_graph,
    grid_graph,
    path_graph,
    triangulated_grid,
)
from repro.isomorphism import path_pattern, treewidth_cover, triangle
from repro.planar import embed_geometric


def cover_of(gg, k, d, seed):
    emb, _ = embed_geometric(gg)
    return treewidth_cover(gg.graph, emb, k, d, seed), emb


class TestCoverStructure:
    def test_pieces_are_subgraphs_with_valid_decompositions(self):
        gg = grid_graph(8, 8)
        cover, _ = cover_of(gg, k=4, d=2, seed=0)
        g = gg.graph
        for piece in cover.pieces:
            piece.decomposition.validate(piece.graph)
            for a, b in piece.graph.iter_edges():
                assert g.has_edge(
                    int(piece.originals[a]), int(piece.originals[b])
                )

    def test_width_bound(self):
        # Theorem 2.4 (with the stellation slack): width <= 3(d+1) + 2.
        for d in (0, 1, 2, 3):
            gg = delaunay_graph(120, seed=d)
            cover, _ = cover_of(gg, k=4, d=d, seed=d)
            assert cover.max_width() <= 3 * (d + 1) + 2

    def test_vertex_in_few_pieces(self):
        gg = grid_graph(10, 10)
        d = 2
        cover, _ = cover_of(gg, k=4, d=d, seed=1)
        counts = cover.pieces_per_vertex(gg.graph.n)
        assert counts.max() <= d + 1
        # Every vertex is covered by at least one piece.
        assert counts.min() >= 1

    def test_pieces_cover_all_vertices_and_cluster_edges(self):
        gg = delaunay_graph(80, seed=2)
        cover, _ = cover_of(gg, k=3, d=1, seed=3)
        seen = np.zeros(gg.graph.n, dtype=bool)
        for piece in cover.pieces:
            seen[piece.originals] = True
        assert seen.all()

    def test_d_zero(self):
        gg = grid_graph(5, 5)
        cover, _ = cover_of(gg, k=1, d=0, seed=4)
        # Each piece is a single BFS level (no edges inside a level of a
        # bipartite grid).
        for piece in cover.pieces:
            assert piece.decomposition.width() <= 3 * 1 + 2

    def test_invalid_args(self):
        gg = path_graph(4)
        emb, _ = embed_geometric(gg)
        with pytest.raises(ValueError):
            treewidth_cover(gg.graph, emb, 0, 1, seed=0)
        with pytest.raises(ValueError):
            treewidth_cover(gg.graph, emb, 2, -1, seed=0)


class TestCaptureProbability:
    def test_fixed_occurrence_captured_half_the_time(self):
        # Theorem 2.4: a fixed occurrence is inside some piece with
        # probability >= 1/2.  Track one fixed triangle of a triangulated
        # grid across seeds.
        gg = triangulated_grid(9, 9)
        pattern = triangle()
        occurrence = next(iter_isomorphisms(pattern, gg.graph))
        target_set = set(occurrence.values())
        hits = 0
        trials = 40
        emb, _ = embed_geometric(gg)
        for s in range(trials):
            cover = treewidth_cover(
                gg.graph, emb, pattern.k, pattern.diameter(), seed=s
            )
            for piece in cover.pieces:
                piece_set = set(piece.originals.tolist())
                if target_set <= piece_set:
                    # The piece must contain the occurrence as a subgraph
                    # (it is induced, so edges are automatic).
                    hits += 1
                    break
        assert hits / trials >= 0.5

    def test_long_path_occurrences(self):
        # Patterns of diameter 3 in a cycle (occurrences everywhere).
        gg = cycle_graph(40)
        pattern = path_pattern(4)
        emb, _ = embed_geometric(gg)
        hits = 0
        trials = 30
        target_set = {0, 1, 2, 3}
        for s in range(trials):
            cover = treewidth_cover(
                gg.graph, emb, pattern.k, pattern.diameter(), seed=s
            )
            if any(
                target_set <= set(p.originals.tolist())
                for p in cover.pieces
            ):
                hits += 1
        assert hits / trials >= 0.5


class TestCoverCost:
    def test_work_scales_with_n_times_d(self):
        emb_small, _ = embed_geometric(grid_graph(10, 10))
        emb_large, _ = embed_geometric(grid_graph(20, 20))
        small = treewidth_cover(
            grid_graph(10, 10).graph, emb_small, 4, 2, seed=0
        )
        large = treewidth_cover(
            grid_graph(20, 20).graph, emb_large, 4, 2, seed=0
        )
        assert large.cost.work <= 8 * small.cost.work  # ~4x vertices

    def test_depth_polylogarithmic(self):
        gg = delaunay_graph(400, seed=7)
        emb, _ = embed_geometric(gg)
        cover = treewidth_cover(gg.graph, emb, 4, 2, seed=1)
        k = 4
        lg = np.log2(gg.graph.n)
        # O(k log n) depth with generous constants (clustering radius etc.).
        assert cover.cost.depth <= 30 * k * lg
