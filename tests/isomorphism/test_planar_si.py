"""Theorem 2.1 / Corollary 2.2 driver tests: decision + witness."""

import numpy as np
import pytest

from repro.baselines import has_isomorphism
from repro.graphs import (
    cycle_graph,
    delaunay_graph,
    grid_graph,
    path_graph,
    random_tree,
    triangulated_grid,
    wheel_graph,
)
from repro.isomorphism import (
    clique_pattern,
    cycle_pattern,
    decide_subgraph_isomorphism,
    diamond,
    find_occurrence,
    path_pattern,
    star_pattern,
    triangle,
)
from repro.planar import embed_geometric, embed_planar


def run(gg, pattern, seed=0, **kw):
    emb, _ = embed_geometric(gg)
    return decide_subgraph_isomorphism(gg.graph, emb, pattern, seed, **kw)


POSITIVE = [
    ("triangle-in-trigrid", triangulated_grid(7, 7), triangle()),
    ("c4-in-grid", grid_graph(7, 7), cycle_pattern(4)),
    ("p5-in-grid", grid_graph(6, 6), path_pattern(5)),
    ("star4-in-wheel", wheel_graph(12), star_pattern(4)),
    ("diamond-in-trigrid", triangulated_grid(6, 6), diamond()),
    ("triangle-in-delaunay", delaunay_graph(90, seed=4), triangle()),
]

NEGATIVE = [
    ("triangle-in-grid", grid_graph(7, 7), triangle()),
    ("c3-in-c10", cycle_graph(10), triangle()),
    ("k4-in-grid", grid_graph(6, 6), clique_pattern(4)),
    ("c5-in-grid", grid_graph(6, 6), cycle_pattern(5)),
]


@pytest.mark.parametrize("name,gg,pattern", POSITIVE, ids=[c[0] for c in POSITIVE])
class TestPositiveInstances:
    def test_found(self, name, gg, pattern):
        assert has_isomorphism(pattern, gg.graph)  # sanity
        result = run(gg, pattern, seed=1)
        assert result.found

    def test_witness_is_occurrence(self, name, gg, pattern):
        emb, _ = embed_geometric(gg)
        result = find_occurrence(gg.graph, emb, pattern, seed=2)
        assert result.found and result.witness is not None
        w = result.witness
        assert len(set(w.values())) == pattern.k
        for a, b in pattern.graph.iter_edges():
            assert gg.graph.has_edge(w[a], w[b])


@pytest.mark.parametrize("name,gg,pattern", NEGATIVE, ids=[c[0] for c in NEGATIVE])
class TestNegativeInstances:
    def test_not_found(self, name, gg, pattern):
        assert not has_isomorphism(pattern, gg.graph)  # sanity
        result = run(gg, pattern, seed=3)
        assert not result.found
        assert result.witness is None


class TestDriverBehavior:
    def test_expected_constant_rounds_on_positive(self):
        # Each round succeeds with probability >= 1/2, so the mean rounds
        # used should be < 2.5 over many seeds.
        gg = triangulated_grid(8, 8)
        emb, _ = embed_geometric(gg)
        rounds = [
            decide_subgraph_isomorphism(
                gg.graph, emb, triangle(), seed=s
            ).rounds_used
            for s in range(20)
        ]
        assert np.mean(rounds) <= 2.5

    def test_sequential_engine_agrees(self):
        gg = triangulated_grid(6, 6)
        for pattern in (triangle(), cycle_pattern(4)):
            a = run(gg, pattern, seed=5, engine="sequential")
            b = run(gg, pattern, seed=5, engine="parallel")
            assert a.found == b.found

    def test_disconnected_pattern_rejected(self):
        from repro.graphs import Graph
        from repro.isomorphism import Pattern

        two_edges = Pattern(Graph(4, [(0, 1), (2, 3)]))
        with pytest.raises(ValueError, match="connected"):
            run(grid_graph(4, 4), two_edges)

    def test_bad_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            run(grid_graph(3, 3), triangle(), engine="quantum")

    def test_rounds_validation(self):
        with pytest.raises(ValueError):
            run(grid_graph(3, 3), triangle(), rounds=0)

    def test_explicit_rounds_respected(self):
        gg = grid_graph(6, 6)
        result = run(gg, triangle(), seed=0, rounds=3)
        assert result.rounds_used == 3  # negative instance: all rounds used

    def test_pattern_larger_than_graph(self):
        gg = path_graph(3)
        result = run(gg, path_pattern(5), seed=0, rounds=2)
        assert not result.found

    def test_dmp_embedding_input(self):
        # The driver works with combinatorial (DMP) embeddings too.
        g = random_tree(30, seed=8)
        emb = embed_planar(g)
        result = decide_subgraph_isomorphism(
            g, emb, path_pattern(3), seed=0
        )
        assert result.found

    def test_cost_accumulates(self):
        result = run(grid_graph(6, 6), cycle_pattern(4), seed=0)
        assert result.cost.work > 0
        assert 0 < result.cost.depth <= result.cost.work


class TestMonteCarloSoundness:
    def test_no_false_positives_over_seeds(self):
        gg = grid_graph(6, 6)
        for s in range(10):
            assert not run(gg, triangle(), seed=s).found

    def test_whp_no_false_negatives(self):
        gg = triangulated_grid(6, 6)
        for s in range(10):
            assert run(gg, triangle(), seed=s).found
