"""Recovery walker details: images, dedup, engine-agnosticism."""


from repro.baselines import count_isomorphisms
from repro.graphs import cycle_graph, grid_graph, triangulated_grid, wheel_graph
from repro.isomorphism import (
    SubgraphStateSpace,
    cycle_pattern,
    first_witness,
    iter_witnesses,
    parallel_dp,
    path_pattern,
    sequential_dp,
    triangle,
    witness_images,
)
from repro.treedecomp import make_nice, minfill_decomposition


def tables(graph, pattern, engine="sequential"):
    td, _ = minfill_decomposition(graph)
    nice, _ = make_nice(td)
    space = SubgraphStateSpace(pattern, graph)
    run = sequential_dp if engine == "sequential" else parallel_dp
    result = run(space, nice)
    return space, nice, result


class TestWitnessImages:
    def test_images_dedup_automorphisms(self):
        g = wheel_graph(7).graph
        space, nice, result = tables(g, triangle())
        images = witness_images(space, nice, result.valid)
        # One triangle per rim edge.
        assert len(images) == 7
        maps = sum(1 for _ in iter_witnesses(space, nice, result.valid))
        assert maps == 6 * len(images)

    def test_images_are_real_occurrences(self):
        g = triangulated_grid(3, 3).graph
        space, nice, result = tables(g, triangle())
        for image in witness_images(space, nice, result.valid):
            sub, _ = g.induced_subgraph(sorted(image))
            assert sub.m >= 3  # a triangle lives inside

    def test_empty_when_absent(self):
        g = grid_graph(3, 3).graph
        space, nice, result = tables(g, triangle())
        assert witness_images(space, nice, result.valid) == set()


class TestWitnessEnumeration:
    def test_no_duplicates(self):
        g = cycle_graph(8).graph
        space, nice, result = tables(g, path_pattern(4))
        ws = [
            tuple(sorted(w.items()))
            for w in iter_witnesses(space, nice, result.valid)
        ]
        assert len(ws) == len(set(ws))
        assert len(ws) == count_isomorphisms(path_pattern(4), g)

    def test_streaming_stop_early(self):
        g = triangulated_grid(4, 4).graph
        space, nice, result = tables(g, triangle())
        gen = iter_witnesses(space, nice, result.valid)
        first = next(gen)
        assert len(first) == 3  # can stop after one without exhausting

    def test_parallel_tables_equivalent(self):
        g = cycle_graph(9).graph
        pattern = path_pattern(3)
        _, _, seq = tables(g, pattern, "sequential")
        space, nice, par = tables(g, pattern, "parallel")
        a = {
            tuple(sorted(w.items()))
            for w in iter_witnesses(space, nice, seq.valid)
        }
        b = {
            tuple(sorted(w.items()))
            for w in iter_witnesses(space, nice, par.valid)
        }
        assert a == b

    def test_first_witness_none_cases(self):
        g = grid_graph(2, 2).graph
        space, nice, result = tables(g, cycle_pattern(5))
        assert first_witness(space, nice, result.valid) is None
