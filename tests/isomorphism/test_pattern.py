"""Tests for the Pattern class and the pattern library."""

import pytest

from repro.graphs import Graph
from repro.isomorphism import (
    Pattern,
    clique_pattern,
    cycle_pattern,
    diamond,
    path_pattern,
    star_pattern,
    triangle,
)


class TestLibrary:
    def test_triangle(self):
        p = triangle()
        assert p.k == 3 and p.graph.m == 3
        assert p.diameter() == 1

    def test_path(self):
        p = path_pattern(5)
        assert p.k == 5 and p.diameter() == 4
        with pytest.raises(ValueError):
            path_pattern(0)

    def test_cycle(self):
        assert cycle_pattern(8).diameter() == 4
        assert cycle_pattern(3).graph == triangle().graph
        with pytest.raises(ValueError):
            cycle_pattern(2)

    def test_star(self):
        p = star_pattern(4)
        assert p.k == 5 and p.diameter() == 2
        assert p.neighbors(0) == (1, 2, 3, 4)
        with pytest.raises(ValueError):
            star_pattern(0)

    def test_clique(self):
        p = clique_pattern(4)
        assert p.graph.m == 6 and p.diameter() == 1

    def test_diamond(self):
        p = diamond()
        assert p.k == 4 and p.graph.m == 5
        assert p.diameter() == 2


class TestPattern:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Pattern(Graph.empty(0))

    def test_connectivity(self):
        assert triangle().is_connected()
        assert not Pattern(Graph(4, [(0, 1), (2, 3)])).is_connected()
        assert Pattern(Graph(1, [])).is_connected()

    def test_components(self):
        p = Pattern(Graph(5, [(0, 1), (2, 3)]))
        comps = p.components()
        assert sorted(len(c) for c in comps) == [1, 2, 2]

    def test_component_patterns_relabel(self):
        p = Pattern(Graph(5, [(3, 4), (0, 1), (1, 2)]))
        parts = p.component_patterns()
        sizes = sorted(sub.k for sub, _ in parts)
        assert sizes == [2, 3]
        for sub, originals in parts:
            for a, b in sub.graph.iter_edges():
                assert p.graph.has_edge(
                    int(originals[a]), int(originals[b])
                )

    def test_diameter_of_disconnected(self):
        # Max over components.
        p = Pattern(Graph(5, [(0, 1), (2, 3), (3, 4)]))
        assert p.diameter() == 2

    def test_spanning_forest(self):
        p = cycle_pattern(6)
        forest = p.spanning_forest_edges()
        assert len(forest) == 5  # k - 1 for a connected pattern
        for u, v in forest:
            assert p.graph.has_edge(u, v)

    def test_spanning_forest_disconnected(self):
        p = Pattern(Graph(4, [(0, 1), (2, 3)]))
        assert len(p.spanning_forest_edges()) == 2

    def test_neighbors_cached(self):
        p = diamond()
        assert p.neighbors(0) == (1, 2, 3)
        assert p.neighbors(1) == (0, 2)
