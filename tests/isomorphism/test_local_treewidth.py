"""Section 4.3 tests: bounded-genus targets via the general cover."""


from repro.baselines import has_isomorphism
from repro.graphs import grid_graph, torus_grid
from repro.isomorphism import (
    cycle_pattern,
    decide_subgraph_isomorphism_general,
    local_treewidth_cover,
    path_pattern,
    triangle,
)


class TestGeneralCover:
    def test_pieces_valid(self):
        g = torus_grid(8, 8)
        cover = local_treewidth_cover(g, k=4, d=2, seed=0)
        for piece in cover.pieces:
            piece.decomposition.validate(piece.graph)

    def test_vertices_covered(self):
        import numpy as np

        g = torus_grid(7, 7)
        cover = local_treewidth_cover(g, k=3, d=1, seed=1)
        seen = np.zeros(g.n, dtype=bool)
        for piece in cover.pieces:
            seen[piece.originals] = True
        assert seen.all()

    def test_width_tracks_window_diameter(self):
        g = torus_grid(10, 10)
        for d in (1, 2):
            cover = local_treewidth_cover(g, k=4, d=d, seed=2)
            # Locally linear treewidth: width O(d); heuristic slack allowed.
            assert cover.max_width() <= 6 * (d + 1) + 4


class TestGeneralDriver:
    def test_c4_in_torus(self):
        g = torus_grid(6, 6)
        assert has_isomorphism(cycle_pattern(4), g)
        result = decide_subgraph_isomorphism_general(
            g, cycle_pattern(4), seed=0
        )
        assert result.found

    def test_no_triangle_in_torus(self):
        g = torus_grid(6, 6)
        result = decide_subgraph_isomorphism_general(g, triangle(), seed=1)
        assert not result.found

    def test_witness(self):
        g = torus_grid(5, 5)
        result = decide_subgraph_isomorphism_general(
            g, path_pattern(4), seed=2, want_witness=True
        )
        assert result.found
        w = result.witness
        for a, b in path_pattern(4).graph.iter_edges():
            assert g.has_edge(w[a], w[b])

    def test_matches_planar_driver_on_planar_input(self):
        from repro.isomorphism import decide_subgraph_isomorphism
        from repro.planar import embed_geometric

        gg = grid_graph(6, 6)
        emb, _ = embed_geometric(gg)
        planar = decide_subgraph_isomorphism(
            gg.graph, emb, cycle_pattern(4), seed=3
        )
        general = decide_subgraph_isomorphism_general(
            gg.graph, cycle_pattern(4), seed=3
        )
        assert planar.found == general.found == True  # noqa: E712

    def test_sequential_engine(self):
        g = torus_grid(5, 5)
        result = decide_subgraph_isomorphism_general(
            g, cycle_pattern(4), seed=4, engine="sequential"
        )
        assert result.found
