"""Packed-kernel tests: codec laws, table primitives, engine equivalence.

The packed engine's contract (see ``repro.isomorphism.packed``) has three
load-bearing parts, each tested here:

* the bag-relative codec is a bijection between tuple states and int64
  codes, strictly monotone w.r.t. the colexicographic digit order (sorted
  code arrays are canonical tables);
* the shared table primitives (dedup/membership/key bucketing) agree with
  their obvious dict/loop specifications;
* ``engine="packed"`` reproduces the reference engine's tables,
  multiplicities, accepting counts, parallel diagnostics and — crucially —
  charged costs, state for state.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import Graph, grid_graph, triangulated_grid, wheel_graph
from repro.isomorphism import (
    SubgraphStateSpace,
    clique_pattern,
    cycle_pattern,
    dedup_accumulate,
    parallel_dp,
    path_pattern,
    sequential_dp,
    star_pattern,
    triangle,
)
from repro.isomorphism.packed import (
    match_key_pairs,
    member_positions,
    packed_ops_for,
)
from repro.treedecomp import make_nice, minfill_decomposition


def _ops_and_ctx(bag_vertices, pattern=None, side=4):
    """A packed-ops instance over a small grid plus a ctx for ``bag``."""
    g = grid_graph(side, side).graph
    pattern = pattern if pattern is not None else path_pattern(3)
    space = SubgraphStateSpace(pattern, g)
    ops = space.packed_ops()
    bag = np.asarray(sorted(bag_vertices), dtype=np.int64)
    return ops, ops.ctx(bag)


# ---------------------------------------------------------------------------
# codec laws
# ---------------------------------------------------------------------------


class TestCodec:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_round_trip_identity(self, data):
        bag_size = data.draw(st.integers(min_value=0, max_value=6))
        k = data.draw(st.integers(min_value=2, max_value=4))
        bag_vertices = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=15),
                min_size=bag_size,
                max_size=bag_size,
                unique=True,
            )
        )
        ops, ctx = _ops_and_ctx(bag_vertices, pattern=path_pattern(k))
        rows = data.draw(
            st.lists(
                st.lists(
                    st.integers(min_value=0, max_value=bag_size + 1),
                    min_size=k,
                    max_size=k,
                ),
                min_size=0,
                max_size=20,
            )
        )
        # digit d: 0 -> unmatched, 1 -> in-child, 2+j -> bag vertex j.
        lut = [-1, -2] + [int(v) for v in ctx.bag]
        states = [tuple(lut[d] for d in row) for row in rows]
        codes = ops.encode(ctx, states)
        assert ops.decode(ctx, codes) == states

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_encoding_preserves_colex_order(self, data):
        bag_size = data.draw(st.integers(min_value=0, max_value=5))
        k = data.draw(st.integers(min_value=2, max_value=4))
        bag_vertices = list(range(bag_size))
        ops, ctx = _ops_and_ctx(bag_vertices, pattern=path_pattern(k))
        rows = data.draw(
            st.lists(
                st.lists(
                    st.integers(min_value=0, max_value=bag_size + 1),
                    min_size=k,
                    max_size=k,
                ),
                min_size=2,
                max_size=20,
                unique_by=tuple,
            )
        )
        lut = [-1, -2] + [int(v) for v in ctx.bag]
        states = [tuple(lut[d] for d in row) for row in rows]
        codes = ops.encode(ctx, states)
        # Strictly monotone w.r.t. colex digit order: sorting codes sorts
        # the digit rows colexicographically, and distinct rows get
        # distinct codes.
        colex = sorted(range(len(rows)), key=lambda i: rows[i][::-1])
        by_code = sorted(range(len(rows)), key=lambda i: int(codes[i]))
        assert by_code == colex
        assert len(set(codes.tolist())) == len(rows)

    def test_codes_cover_valid_tables(self):
        # Every state of a real DP table encodes and round-trips: the codec
        # is total on bag-mapped states.
        g = triangulated_grid(3, 3).graph
        space = SubgraphStateSpace(triangle(), g)
        td, _ = minfill_decomposition(g)
        nice, _ = make_nice(td)
        ref = sequential_dp(space, nice, engine="reference")
        ops = space.packed_ops()
        for node in range(nice.num_nodes):
            ctx = ops.ctx(nice.bags[node])
            states = list(ref.valid[node])
            codes = ops.encode(ctx, states)
            assert ops.decode(ctx, codes) == states


# ---------------------------------------------------------------------------
# table primitives
# ---------------------------------------------------------------------------


class TestPrimitives:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=-50, max_value=50),
                st.integers(min_value=1, max_value=5),
            ),
            max_size=40,
        )
    )
    def test_dedup_accumulate(self, pairs):
        codes = np.asarray([c for c, _ in pairs], dtype=np.int64)
        mults = np.asarray([m for _, m in pairs], dtype=np.int64)
        out_codes, out_mults = dedup_accumulate(codes, mults)
        expect = {}
        for c, m in pairs:
            expect[c] = expect.get(c, 0) + m
        assert out_codes.tolist() == sorted(expect)
        assert out_mults.tolist() == [expect[c] for c in sorted(expect)]

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=30), max_size=20, unique=True),
        st.lists(st.integers(min_value=0, max_value=30), max_size=20),
    )
    def test_member_positions(self, table, queries):
        table = np.asarray(sorted(table), dtype=np.int64)
        queries = np.asarray(queries, dtype=np.int64)
        pos, found = member_positions(table, queries)
        for i, q in enumerate(queries.tolist()):
            assert bool(found[i]) == (q in table.tolist())
            if found[i]:
                assert table[pos[i]] == q

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=6), max_size=15),
        st.lists(st.integers(min_value=0, max_value=6), max_size=15),
    )
    def test_match_key_pairs(self, kl, kr):
        li, ri = match_key_pairs(
            np.asarray(kl, dtype=np.int64), np.asarray(kr, dtype=np.int64)
        )
        got = sorted(zip(li.tolist(), ri.tolist()))
        expect = sorted(
            (i, j)
            for i, a in enumerate(kl)
            for j, b in enumerate(kr)
            if a == b
        )
        assert got == expect


# ---------------------------------------------------------------------------
# engine equivalence
# ---------------------------------------------------------------------------

TARGETS = [
    ("grid", grid_graph(4, 4).graph),
    ("tri-grid", triangulated_grid(3, 4).graph),
    ("wheel", wheel_graph(7).graph),
]

PATTERNS = [
    ("triangle", triangle()),
    ("p4", path_pattern(4)),
    ("c4", cycle_pattern(4)),
    ("star3", star_pattern(3)),
    ("k4", clique_pattern(4)),
]


@pytest.mark.parametrize("tname,target", TARGETS, ids=[t[0] for t in TARGETS])
@pytest.mark.parametrize("pname,pattern", PATTERNS, ids=[p[0] for p in PATTERNS])
class TestPackedMatchesReference:
    def test_sequential_tables_costs_identical(
        self, tname, target, pname, pattern
    ):
        td, _ = minfill_decomposition(target)
        nice, _ = make_nice(td)
        space = SubgraphStateSpace(pattern, target)
        assert packed_ops_for(space, nice) is not None
        ref = sequential_dp(space, nice, engine="reference")
        pkd = sequential_dp(space, nice, engine="packed")
        assert pkd.accepting_count == ref.accepting_count
        assert pkd.found == ref.found
        assert pkd.cost == ref.cost
        for node in range(nice.num_nodes):
            assert dict(pkd.valid[node]) == ref.valid[node], node

    def test_parallel_tables_costs_diagnostics_identical(
        self, tname, target, pname, pattern
    ):
        td, _ = minfill_decomposition(target)
        nice, _ = make_nice(td)
        space = SubgraphStateSpace(pattern, target)
        ref = parallel_dp(space, nice, engine="reference")
        pkd = parallel_dp(space, nice, engine="packed")
        assert pkd.accepting_count == ref.accepting_count
        assert pkd.cost == ref.cost
        assert (
            pkd.num_layers,
            pkd.num_paths,
            pkd.max_bfs_rounds,
            pkd.total_states,
            pkd.total_shortcuts,
        ) == (
            ref.num_layers,
            ref.num_paths,
            ref.max_bfs_rounds,
            ref.total_states,
            ref.total_shortcuts,
        )
        for node in range(nice.num_nodes):
            assert dict(pkd.valid[node]) == ref.valid[node], node


class TestRandomizedEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=4, max_value=12),
        st.integers(min_value=0, max_value=10**6),
        st.sampled_from(["triangle", "p4", "c4", "star3"]),
    )
    def test_random_graphs(self, n, seed, pname):
        rng = np.random.default_rng(seed)
        edges = []
        for _ in range(2 * n):
            u, v = rng.integers(0, n, size=2)
            if u != v:
                edges.append((int(u), int(v)))
        g = Graph(n, edges)
        pattern = dict(PATTERNS)[pname]
        td, _ = minfill_decomposition(g)
        nice, _ = make_nice(td)
        space = SubgraphStateSpace(pattern, g)
        ref = sequential_dp(space, nice, engine="reference")
        pkd = sequential_dp(space, nice, engine="packed")
        assert pkd.accepting_count == ref.accepting_count
        assert pkd.cost == ref.cost
        pref = parallel_dp(space, nice, engine="reference")
        ppkd = parallel_dp(space, nice, engine="packed")
        assert ppkd.cost == pref.cost
        assert ppkd.total_shortcuts == pref.total_shortcuts
        for node in range(nice.num_nodes):
            assert dict(ppkd.valid[node]) == pref.valid[node]


class TestOverflowFallback:
    """The packed -> reference int64-overflow fallback is correct but no
    longer silent: one PackedOverflowWarning per space type, plus a
    ``packed_overflow_fallbacks`` counter on the caller's trace."""

    def _overflowing_instance(self):
        # k = 31 overflows even for tiny bags: (bag + 2)^31 needs > 62
        # bits as soon as a bag has 3+ vertices (base 5^31 ~ 2^72), and a
        # path decomposition of a path has bags of size 2-3.
        gg = grid_graph(2, 20)
        pattern = path_pattern(31)
        g = gg.graph
        td, _ = minfill_decomposition(g)
        nice, _ = make_nice(td)
        space = SubgraphStateSpace(pattern, g)
        return space, nice

    def test_packed_ops_for_warns_once_and_counts(self):
        from repro.isomorphism.packed import (
            PackedOverflowWarning,
            overflow_warning_scope,
        )
        from repro.pram import Tracer

        space, nice = self._overflowing_instance()
        assert space.packed_ops().fits(nice) is False  # really overflows
        tracer = Tracer("overflow-test")
        with overflow_warning_scope():
            with pytest.warns(PackedOverflowWarning, match="falling back"):
                assert packed_ops_for(space, nice, tracer=tracer) is None
            assert tracer.root.counters["packed_overflow_fallbacks"] == 1
            # Second overflow for the same space type inside the same
            # scope: counted, not re-warned.
            import warnings as _warnings

            with _warnings.catch_warnings(record=True) as caught:
                _warnings.simplefilter("always")
                assert packed_ops_for(space, nice, tracer=tracer) is None
            assert not [
                w for w in caught
                if issubclass(w.category, PackedOverflowWarning)
            ]
            assert tracer.root.counters["packed_overflow_fallbacks"] == 2

    def test_warns_every_time_outside_any_scope(self):
        # No scope installed -> no dedup memory anywhere: nothing global
        # left to leak between unrelated callers or tests.
        from repro.isomorphism.packed import PackedOverflowWarning

        space, nice = self._overflowing_instance()
        for _ in range(2):
            with pytest.warns(PackedOverflowWarning, match="falling back"):
                assert packed_ops_for(space, nice) is None

    def test_warns_once_per_session(self):
        # Two back-to-back sessions over the same target: each session
        # owns a fresh warned-set, so the warning fires once per session.
        from repro.engine.session import TargetSession
        from repro.isomorphism.packed import (
            PackedOverflowWarning,
            overflow_warning_scope,
        )

        space, nice = self._overflowing_instance()
        graph = grid_graph(2, 20).graph
        for _ in range(2):
            session = TargetSession(graph)
            with overflow_warning_scope(session.overflow_warned):
                with pytest.warns(PackedOverflowWarning):
                    assert packed_ops_for(space, nice) is None
                import warnings as _warnings

                with _warnings.catch_warnings(record=True) as caught:
                    _warnings.simplefilter("always")
                    assert packed_ops_for(space, nice) is None
                assert not [
                    w for w in caught
                    if issubclass(w.category, PackedOverflowWarning)
                ]

    def test_overflow_fallback_still_correct(self):
        space, nice = self._overflowing_instance()
        with pytest.warns(Warning):
            packed = sequential_dp(space, nice, engine="packed")
        reference = sequential_dp(space, nice, engine="reference")
        # The fallback produced the reference behavior bit for bit.
        assert packed.found == reference.found
        assert packed.accepting_count == reference.accepting_count
        assert packed.cost == reference.cost
