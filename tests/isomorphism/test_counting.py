"""Deterministic exact counting (the future-work extension) vs oracle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import count_isomorphisms
from repro.graphs import (
    cycle_graph,
    delaunay_graph,
    grid_graph,
    path_graph,
    random_tree,
    triangulated_grid,
    wheel_graph,
    Graph,
)
from repro.isomorphism import (
    Pattern,
    count_occurrences_exact,
    cycle_pattern,
    path_pattern,
    star_pattern,
    triangle,
)
from repro.planar import embed_geometric, embed_planar


def count(gg, pattern):
    emb, _ = embed_geometric(gg)
    return count_occurrences_exact(gg.graph, emb, pattern)


CASES = [
    ("k3-in-trigrid", triangulated_grid(5, 5), triangle()),
    ("k3-in-grid", grid_graph(5, 5), triangle()),
    ("c4-in-grid", grid_graph(5, 5), cycle_pattern(4)),
    ("p4-in-cycle", cycle_graph(11), path_pattern(4)),
    ("s3-in-wheel", wheel_graph(8), star_pattern(3)),
    ("p3-in-delaunay", delaunay_graph(40, seed=2), path_pattern(3)),
]


@pytest.mark.parametrize("name,gg,pattern", CASES, ids=[c[0] for c in CASES])
def test_matches_exhaustive(name, gg, pattern):
    result = count(gg, pattern)
    assert result.isomorphisms == count_isomorphisms(pattern, gg.graph)


class TestDeterminism:
    def test_repeatable(self):
        gg = triangulated_grid(4, 4)
        a = count(gg, triangle())
        b = count(gg, triangle())
        assert a.isomorphisms == b.isomorphisms
        assert a.cost == b.cost  # no randomness anywhere

    def test_zero_when_absent(self):
        assert count(grid_graph(4, 4), triangle()).isomorphisms == 0

    def test_disconnected_target(self):
        g = Graph(8, [(0, 1), (1, 2), (0, 2), (4, 5), (5, 6), (4, 6)])
        emb = embed_planar(g)
        result = count_occurrences_exact(g, emb, triangle())
        assert result.isomorphisms == 12  # two triangles x |Aut(K3)| = 6

    def test_disconnected_pattern_rejected(self):
        gg = grid_graph(3, 3)
        emb, _ = embed_geometric(gg)
        with pytest.raises(ValueError, match="connected"):
            count_occurrences_exact(
                gg.graph, emb, Pattern(Graph(2, []))
            )

    def test_deep_target(self):
        # Windows with nontrivial nesting: a long path, pattern diameter 2.
        gg = path_graph(30)
        result = count(gg, path_pattern(3))
        assert result.isomorphisms == 2 * 28  # 28 images x 2 orientations

    def test_tree_target(self):
        g = random_tree(25, seed=4)
        emb = embed_planar(g)
        result = count_occurrences_exact(g, emb, star_pattern(3))
        assert result.isomorphisms == count_isomorphisms(
            star_pattern(3), g
        )

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=100))
    def test_random_delaunay(self, seed):
        gg = delaunay_graph(25, seed=seed)
        result = count(gg, cycle_pattern(4))
        assert result.isomorphisms == count_isomorphisms(
            cycle_pattern(4), gg.graph
        )
