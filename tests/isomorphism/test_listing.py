"""Theorem 4.2 tests: listing all occurrences with the stopping rule."""

import pytest

from repro.baselines import count_isomorphisms, iter_isomorphisms
from repro.graphs import (
    cycle_graph,
    grid_graph,
    triangulated_grid,
    wheel_graph,
)
from repro.isomorphism import (
    count_occurrences,
    cycle_pattern,
    list_occurrences,
    path_pattern,
    triangle,
)
from repro.planar import embed_geometric


def listing(gg, pattern, seed=0, **kw):
    emb, _ = embed_geometric(gg)
    return list_occurrences(gg.graph, emb, pattern, seed, **kw)


class TestListing:
    def test_lists_every_triangle(self):
        gg = triangulated_grid(5, 5)
        result = listing(gg, triangle(), seed=0)
        oracle = {
            tuple(sorted(w.items()))
            for w in iter_isomorphisms(triangle(), gg.graph)
        }
        ours = {tuple(w) for w in result.witnesses}
        assert ours == oracle

    def test_lists_every_c4_in_grid(self):
        gg = grid_graph(5, 5)
        result = listing(gg, cycle_pattern(4), seed=1)
        assert len(result.witnesses) == count_isomorphisms(
            cycle_pattern(4), gg.graph
        )
        # 16 squares, each C4 has 8 automorphisms.
        assert len(result.occurrences) == 16

    def test_empty_result_when_absent(self):
        gg = grid_graph(5, 5)
        result = listing(gg, triangle(), seed=2)
        assert not result.witnesses
        assert result.iterations >= 1

    def test_occurrences_dedup_automorphisms(self):
        gg = cycle_graph(12)
        result = listing(gg, path_pattern(3), seed=3)
        # Each 3-path image counted once; 12 of them on a 12-cycle.
        assert len(result.occurrences) == 12
        assert len(result.witnesses) == 24  # two orientations

    def test_count_occurrences_wrapper(self):
        gg = wheel_graph(8)
        emb, _ = embed_geometric(gg)
        maps = count_occurrences(gg.graph, emb, triangle(), seed=4)
        images = count_occurrences(
            gg.graph, emb, triangle(), seed=4, distinct_images=True
        )
        assert maps == count_isomorphisms(triangle(), gg.graph)
        assert images == 8  # one triangle per rim edge
        assert maps == 6 * images  # |Aut(K3)| = 6

    def test_max_iterations_cap(self):
        gg = grid_graph(4, 4)
        result = listing(gg, triangle(), seed=5, max_iterations=3)
        assert result.iterations <= 3

    def test_disconnected_pattern_rejected(self):
        from repro.graphs import Graph
        from repro.isomorphism import Pattern

        with pytest.raises(ValueError, match="connected"):
            listing(grid_graph(3, 3), Pattern(Graph(2, [])))

    def test_sequential_engine(self):
        gg = triangulated_grid(4, 4)
        a = listing(gg, triangle(), seed=6, engine="sequential")
        b = listing(gg, triangle(), seed=6, engine="parallel")
        assert a.witnesses == b.witnesses
