"""Overflow-warning accounting across execution-backend boundaries.

When the packed kernel's int64 codes would overflow, the DP falls back to
the reference engine, warns once per space type per provider scope, and
bumps a ``packed_overflow_fallbacks`` counter.  Under a non-serial
backend the fallback happens in a *worker*: the counter must come back in
the task's trace subtree and the warning must be re-emitted parent-side,
deduped against the provider's scope — so warning count and trace
counters are backend-independent like everything else.

(The fallback is forced by patching ``PackedSubgraphOps.fits`` — real
overflow needs ``k``/bag sizes whose DP would dominate the suite's
runtime.  Fork-started workers inherit the patch.)
"""

import warnings

import pytest

from repro.exec import ProcessesBackend, SerialBackend, ThreadsBackend
from repro.graphs import triangulated_grid
from repro.isomorphism import cycle_pattern, decide_subgraph_isomorphism
from repro.isomorphism.packed import PackedOverflowWarning, PackedSubgraphOps
from repro.planar import embed_geometric


@pytest.fixture
def target():
    gg = triangulated_grid(4, 4)
    emb, _ = embed_geometric(gg)
    return gg.graph, emb


@pytest.fixture
def always_overflow(monkeypatch):
    monkeypatch.setattr(PackedSubgraphOps, "fits", lambda self, nice: False)


def _count_fallbacks(span) -> int:
    total = span.counters.get("packed_overflow_fallbacks", 0)
    return total + sum(_count_fallbacks(c) for c in span.children)


def _run(target, backend):
    graph, emb = target
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = decide_subgraph_isomorphism(
            graph, emb, cycle_pattern(4), seed=3, rounds=2, backend=backend
        )
    overflow = [
        w for w in caught if issubclass(w.category, PackedOverflowWarning)
    ]
    return result, overflow


@pytest.mark.parametrize("make_backend", [
    lambda: ThreadsBackend(max_workers=2),
    lambda: ProcessesBackend(max_workers=2),
], ids=["threads", "processes"])
def test_worker_fallbacks_fold_into_parent(
    target, always_overflow, make_backend
):
    base, base_warnings = _run(target, SerialBackend())
    base_count = _count_fallbacks(base.trace)
    assert base_count > 0, "patched fits() must force fallbacks"
    assert len(base_warnings) == 1, "deduped to one warning per scope"
    assert getattr(base_warnings[0].message, "kind", None) \
        == "SubgraphStateSpace"

    with make_backend() as backend:
        other, other_warnings = _run(target, backend)
    assert other.cost == base.cost
    assert other.trace.to_dict() == base.trace.to_dict()
    assert _count_fallbacks(other.trace) == base_count
    assert len(other_warnings) == 1
    assert getattr(other_warnings[0].message, "kind", None) \
        == "SubgraphStateSpace"
