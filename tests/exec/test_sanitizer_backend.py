"""Sanitizer semantics under real parallelism (DESIGN.md policy).

The CREW/EREW write-race sanitizer keeps its shadow state in the parent
process, so a non-serial backend cannot see cross-worker writes.  Policy:
degrade to per-worker sanitizing with a one-time
:class:`ParallelSanitizeWarning`, or raise when
``REPRO_SANITIZE_PARALLEL=forbid``.
"""

import warnings

import pytest

from repro.exec import (
    ParallelSanitizeWarning,
    SerialBackend,
    ThreadsBackend,
)
from repro.graphs import triangulated_grid
from repro.isomorphism import cycle_pattern, decide_subgraph_isomorphism
from repro.planar import embed_geometric


@pytest.fixture
def target():
    gg = triangulated_grid(4, 4)
    emb, _ = embed_geometric(gg)
    return gg.graph, emb


@pytest.fixture
def sanitizing(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "crew")
    monkeypatch.delenv("REPRO_SANITIZE_PARALLEL", raising=False)


def test_degrades_with_one_warning(target, sanitizing):
    graph, emb = target
    pat = cycle_pattern(4)
    with ThreadsBackend(max_workers=2) as backend:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = decide_subgraph_isomorphism(
                graph, emb, pat, seed=3, rounds=2, backend=backend
            )
            second = decide_subgraph_isomorphism(
                graph, emb, pat, seed=3, rounds=2, backend=backend
            )
    hits = [w for w in caught if issubclass(w.category,
                                            ParallelSanitizeWarning)]
    assert len(hits) == 1, "warn once per backend instance"
    assert "degrading to per-worker" in str(hits[0].message)
    # The degraded run still returns the serial answer.
    base = decide_subgraph_isomorphism(graph, emb, pat, seed=3, rounds=2)
    assert first.found == base.found
    assert first.cost == base.cost
    assert second.cost == base.cost


def test_fresh_instance_warns_again(target, sanitizing):
    graph, emb = target
    pat = cycle_pattern(4)
    for _ in range(2):
        with ThreadsBackend(max_workers=2) as backend:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                decide_subgraph_isomorphism(
                    graph, emb, pat, seed=3, rounds=1, backend=backend
                )
        assert any(
            issubclass(w.category, ParallelSanitizeWarning) for w in caught
        )


def test_forbid_policy_raises(target, sanitizing, monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE_PARALLEL", "forbid")
    graph, emb = target
    with ThreadsBackend(max_workers=2) as backend:
        with pytest.raises(RuntimeError, match="forbid"):
            decide_subgraph_isomorphism(
                graph, emb, cycle_pattern(4), seed=3, rounds=1,
                backend=backend,
            )


def test_serial_backend_never_warns(target, sanitizing):
    graph, emb = target
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        decide_subgraph_isomorphism(
            graph, emb, cycle_pattern(4), seed=3, rounds=1,
            backend=SerialBackend(),
        )
    assert not [
        w for w in caught
        if issubclass(w.category, ParallelSanitizeWarning)
    ]


def test_no_warning_when_sanitizer_off(target, monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    graph, emb = target
    with ThreadsBackend(max_workers=2) as backend:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            decide_subgraph_isomorphism(
                graph, emb, cycle_pattern(4), seed=3, rounds=1,
                backend=backend,
            )
    assert not [
        w for w in caught
        if issubclass(w.category, ParallelSanitizeWarning)
    ]
