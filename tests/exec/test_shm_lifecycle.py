"""Shared-memory segment lifecycle: no ``/dev/shm`` leaks, whatever dies.

The happy path unlinks each task's segment when its handle's ``result()``
lands.  These tests pin the safety nets for every other exit: a worker
killed mid-flight with the handle abandoned, a backend garbage-collected
without ``close()``, and the module-level registry the ``atexit`` hook
drains.
"""

import gc
import os
import signal
import time

import numpy as np
import pytest

from repro.engine import ColdArtifacts
from repro.exec.backends import ProcessesBackend
from repro.exec.shm import (
    cleanup_segments,
    live_segment_names,
    pack_arrays,
    shm_available,
)
from repro.exec.task import make_piece_task
from repro.graphs import triangulated_grid
from repro.isomorphism import cycle_pattern
from repro.planar import embed_geometric
from repro.pram import Tracer

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="no POSIX shared memory in this sandbox"
)


def _alive(name: str) -> bool:
    return os.path.exists(f"/dev/shm/{name}")


@pytest.fixture(scope="module")
def tasks():
    gg = triangulated_grid(4, 4)
    emb, _ = embed_geometric(gg)
    pattern = cycle_pattern(4)
    provider = ColdArtifacts(gg.graph, emb)
    cover = provider.cover(pattern.k, pattern.diameter(), 3, Tracer("t"))
    pieces = [p for p in cover.pieces if p.graph.n >= pattern.k]
    assert pieces, "cover produced no solvable pieces"
    return [
        make_piece_task(
            p, pattern, "decide", "subgraph", "sequential", "packed"
        )
        for p in pieces
    ]


def test_registry_tracks_pack_and_cleanup():
    seg, _desc = pack_arrays({"a": np.arange(16, dtype=np.int64)})
    name = seg.name
    assert name in live_segment_names()
    assert _alive(name)
    # The atexit hook's function reclaims everything still registered.
    assert cleanup_segments() >= 1
    assert name not in live_segment_names()
    assert not _alive(name)
    # Idempotent on an empty registry.
    assert cleanup_segments() == 0


def test_worker_death_leaves_no_segments(tasks):
    """SIGKILL the only worker with a task in flight and abandon the
    handle: ``close()`` must still unlink every segment."""
    backend = ProcessesBackend(max_workers=1, transport="shm")
    try:
        # First task spins the worker up and completes normally.
        backend.submit(tasks[0]).result()
        workers = list(backend._pool._processes.values())
        assert workers
        handle = backend.submit(tasks[0])  # noqa: F841 - abandoned on purpose
        for proc in workers:
            os.kill(proc.pid, signal.SIGKILL)
        deadline = time.monotonic() + 10
        while any(p.is_alive() for p in workers):
            assert time.monotonic() < deadline, "worker refused to die"
            time.sleep(0.01)
        leaked = list(backend._outstanding)
        assert leaked, "the in-flight task should have an outstanding segment"
    finally:
        backend.close()
    assert not backend._outstanding
    for name in leaked:
        assert name not in live_segment_names()
        assert not _alive(name)


def test_backend_gc_without_close_unlinks_segments(tasks):
    """Garbage-collecting a backend that was never ``close()``d must
    trigger the ``weakref.finalize`` sweep."""
    backend = ProcessesBackend(max_workers=1, transport="shm")
    handle = backend.submit(tasks[0])
    # Let the task finish, then abandon the handle without result():
    # the happy-path cleanup never runs, the segment stays registered.
    handle._future.result()
    names = list(backend._outstanding)
    assert names and all(_alive(n) for n in names)
    backend._pool.shutdown(wait=True)
    del handle, backend
    gc.collect()
    for name in names:
        assert name not in live_segment_names()
        assert not _alive(name)


def test_happy_path_unlinks_on_result(tasks):
    with ProcessesBackend(max_workers=1, transport="shm") as backend:
        handles = [backend.submit(t) for t in tasks]
        for h in handles:
            h.result()
        assert not backend._outstanding
    assert cleanup_segments() == 0
