"""Round-trip properties for the task-transport serialization layer.

CSR graphs and packed ``(codes, mults)`` DP tables must survive both
transports — pickle and POSIX shared memory — bit-exactly: same dtypes,
same values, including the edge cases the kernels rely on (empty tables,
int64 boundary codes, isolated vertices).
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec.shm import (
    pack_arrays,
    release_attached,
    destroy_segment,
    shm_available,
    unpack_arrays,
)
from repro.exec.task import (
    PieceTask,
    decomposition_from_arrays,
    decomposition_to_arrays,
    make_piece_task,
    nice_from_arrays,
    nice_to_arrays,
)
from repro.graphs import Graph, triangulated_grid
from repro.isomorphism.packed import table_from_buffers, table_to_buffers
from repro.planar import embed_geometric
from repro.separating.packed import (
    sep_table_from_buffers,
    sep_table_to_buffers,
)
from repro.treedecomp.nice import make_nice

INT64_MIN = np.iinfo(np.int64).min
INT64_MAX = np.iinfo(np.int64).max


# -- strategies --------------------------------------------------------------

@st.composite
def graphs(draw):
    n = draw(st.integers(min_value=0, max_value=12))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), unique=True))  \
        if possible else []
    return Graph(n, np.array(edges).reshape(-1, 2))


@st.composite
def packed_tables(draw):
    codes = draw(
        st.lists(
            st.integers(min_value=INT64_MIN, max_value=INT64_MAX),
            max_size=32,
            unique=True,
        )
    )
    codes = np.sort(np.array(codes, dtype=np.int64))
    mults = draw(
        st.lists(
            st.integers(min_value=1, max_value=INT64_MAX),
            min_size=len(codes),
            max_size=len(codes),
        )
    )
    return codes, np.array(mults, dtype=np.int64)


def _shm_roundtrip(arrays):
    seg, descriptor = pack_arrays(arrays)
    try:
        aseg, views = unpack_arrays(descriptor)
        out = {k: np.array(v) for k, v in views.items()}
        del views
        release_attached(aseg)
        return out
    finally:
        destroy_segment(seg)


# -- CSR graphs --------------------------------------------------------------

@given(graphs())
@settings(max_examples=50)
def test_graph_roundtrips_through_pickle(graph):
    arrays = graph.to_arrays()
    back = pickle.loads(pickle.dumps(arrays))
    rebuilt = Graph.from_arrays(back["n"], back["indptr"], back["indices"])
    assert rebuilt.n == graph.n
    assert rebuilt.m == graph.m
    assert rebuilt.indptr.dtype == np.int64
    assert rebuilt.indices.dtype == np.int64
    np.testing.assert_array_equal(rebuilt.indptr, graph.indptr)
    np.testing.assert_array_equal(rebuilt.indices, graph.indices)


@pytest.mark.skipif(not shm_available(), reason="no POSIX shared memory")
@given(graphs())
@settings(max_examples=25)
def test_graph_roundtrips_through_shm(graph):
    arrays = graph.to_arrays()
    back = _shm_roundtrip(
        {"indptr": arrays["indptr"], "indices": arrays["indices"]}
    )
    rebuilt = Graph.from_arrays(graph.n, back["indptr"], back["indices"])
    np.testing.assert_array_equal(rebuilt.indptr, graph.indptr)
    np.testing.assert_array_equal(rebuilt.indices, graph.indices)


def test_graph_from_arrays_validates():
    g = Graph(3, np.array([[0, 1], [1, 2]]))
    arrays = g.to_arrays()
    with pytest.raises(ValueError):
        Graph.from_arrays(5, arrays["indptr"], arrays["indices"])
    bad = arrays["indptr"].copy()
    bad[0] = 1
    with pytest.raises(ValueError):
        Graph.from_arrays(3, bad, arrays["indices"])


# -- packed DP tables --------------------------------------------------------

@given(packed_tables())
@settings(max_examples=50)
def test_table_roundtrips_through_pickle(table):
    codes, mults = table_to_buffers(*table)
    b_codes, b_mults = pickle.loads(
        pickle.dumps((codes.tobytes(), mults.tobytes()))
    )
    r_codes, r_mults = table_from_buffers(b_codes, b_mults)
    assert r_codes.dtype == np.int64 and r_mults.dtype == np.int64
    np.testing.assert_array_equal(r_codes, table[0])
    np.testing.assert_array_equal(r_mults, table[1])


@pytest.mark.skipif(not shm_available(), reason="no POSIX shared memory")
@given(packed_tables())
@settings(max_examples=25)
def test_table_roundtrips_through_shm(table):
    codes, mults = table_to_buffers(*table)
    back = _shm_roundtrip({"codes": codes, "mults": mults})
    r_codes, r_mults = table_from_buffers(back["codes"], back["mults"])
    np.testing.assert_array_equal(r_codes, table[0])
    np.testing.assert_array_equal(r_mults, table[1])


def test_empty_table_roundtrips():
    empty = np.zeros(0, dtype=np.int64)
    codes, mults = table_to_buffers(empty, empty)
    r_codes, r_mults = table_from_buffers(codes.tobytes(), mults.tobytes())
    assert r_codes.size == 0 and r_mults.size == 0
    assert r_codes.dtype == np.int64 and r_mults.dtype == np.int64


def test_boundary_codes_roundtrip():
    codes = np.array([INT64_MIN, -1, 0, 1, INT64_MAX], dtype=np.int64)
    mults = np.array([1, 2, 3, 4, INT64_MAX], dtype=np.int64)
    c, m = sep_table_to_buffers(codes, mults)
    r_codes, r_mults = sep_table_from_buffers(c.tobytes(), m.tobytes())
    np.testing.assert_array_equal(r_codes, codes)
    np.testing.assert_array_equal(r_mults, mults)


def test_table_buffers_validate():
    with pytest.raises(ValueError):
        table_to_buffers(
            np.array([3, 1], dtype=np.int64), np.array([1, 1], dtype=np.int64)
        )
    with pytest.raises(ValueError):
        table_to_buffers(
            np.array([1], dtype=np.int64), np.array([1, 2], dtype=np.int64)
        )


# -- shm segment layer -------------------------------------------------------

@pytest.mark.skipif(not shm_available(), reason="no POSIX shared memory")
def test_pack_arrays_mixed_dtypes_and_empties():
    arrays = {
        "a": np.arange(7, dtype=np.int64),
        "b": np.zeros(0, dtype=np.int64),
        "c": np.array([True, False, True]),
        "d": np.array([[1, 2], [3, 4]], dtype=np.int8),
    }
    back = _shm_roundtrip(arrays)
    assert set(back) == set(arrays)
    for key, arr in arrays.items():
        assert back[key].dtype == arr.dtype, key
        assert back[key].shape == arr.shape, key
        np.testing.assert_array_equal(back[key], arr)


# -- whole tasks -------------------------------------------------------------

def _piece():
    gg = triangulated_grid(4, 4)
    emb, _ = embed_geometric(gg)
    from repro.engine import ColdArtifacts
    from repro.isomorphism import cycle_pattern
    from repro.pram import Tracer

    pattern = cycle_pattern(4)
    provider = ColdArtifacts(gg.graph, emb)
    cover = provider.cover(
        pattern.k, pattern.diameter(), 3, Tracer("t")
    )
    piece = next(p for p in cover.pieces if p.graph.n >= pattern.k)
    return piece, pattern


def test_piece_task_pickles_whole():
    piece, pattern = _piece()
    task = make_piece_task(piece, pattern, "decide", "subgraph",
                           "sequential", "packed")
    clone = pickle.loads(pickle.dumps(task))
    assert isinstance(clone, PieceTask)
    assert clone.fingerprint == task.fingerprint
    assert clone.seed == task.seed
    assert set(clone.arrays) == set(task.arrays)
    for key in task.arrays:
        np.testing.assert_array_equal(clone.arrays[key], task.arrays[key])


def test_nice_arrays_roundtrip():
    piece, _ = _piece()
    nice, _cost = make_nice(piece.decomposition.binarize())
    arrays = nice_to_arrays(nice)
    back = nice_from_arrays(
        {k: np.array(v) for k, v in arrays.items()}, nice.root
    )
    assert list(back.kinds) == list(nice.kinds)
    np.testing.assert_array_equal(back.parent, nice.parent)
    assert [sorted(b) for b in back.bags] == [sorted(b) for b in nice.bags]
    assert back.root == nice.root


def test_decomposition_arrays_roundtrip():
    piece, _ = _piece()
    decomp = piece.decomposition
    arrays = decomposition_to_arrays(decomp)
    back = decomposition_from_arrays(
        {k: np.array(v) for k, v in arrays.items()}, int(decomp.root)
    )
    np.testing.assert_array_equal(back.parent, decomp.parent)
    assert [sorted(b) for b in back.bags] == [sorted(b) for b in decomp.bags]
