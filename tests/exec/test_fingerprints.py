"""Cross-process fingerprint stability (promised by ``engine/keys.py``).

Piece/pattern/solve fingerprints are content-only — no ``id()``, no
dict-iteration order, no process-local state — so a fresh interpreter
with a *different* ``PYTHONHASHSEED`` must derive the exact same keys.
That property is what lets a parent address work it shipped to a worker
process by fingerprint alone.
"""

import json
import os
import subprocess
import sys

import numpy as np

from repro.engine.keys import (
    pattern_fingerprint,
    piece_fingerprint,
    solve_fingerprint,
)
from repro.exec.task import make_piece_task

_SCRIPT = r"""
import json
import sys

import numpy as np

from repro.engine import ColdArtifacts
from repro.engine.keys import (
    pattern_fingerprint,
    piece_fingerprint,
    solve_fingerprint,
)
from repro.exec.task import make_piece_task
from repro.graphs import triangulated_grid
from repro.isomorphism import cycle_pattern
from repro.planar import embed_geometric
from repro.pram import Tracer

gg = triangulated_grid(4, 4)
emb, _ = embed_geometric(gg)
pattern = cycle_pattern(4)
provider = ColdArtifacts(gg.graph, emb)
cover = provider.cover(pattern.k, pattern.diameter(), 3, Tracer("t"))
pieces = [p for p in cover.pieces if p.graph.n >= pattern.k]
out = {
    "pattern": pattern_fingerprint(pattern),
    "pieces": [piece_fingerprint(p) for p in pieces],
    "solves": [
        solve_fingerprint(p, pattern, "sequential", "packed", "decide")
        for p in pieces
    ],
    "tasks": [
        make_piece_task(
            p, pattern, "decide", "subgraph", "sequential", "packed"
        ).fingerprint
        for p in pieces
    ],
    "seeds": [
        make_piece_task(
            p, pattern, "decide", "subgraph", "sequential", "packed"
        ).seed
        for p in pieces
    ],
}
json.dump(out, sys.stdout)
"""


def _run_with_hashseed(seed: str) -> dict:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in [os.path.abspath("src"),
                    env.get("PYTHONPATH", "")] if p
    )
    proc = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        capture_output=True, text=True, env=env, check=True,
    )
    return json.loads(proc.stdout)


def test_fingerprints_stable_across_hash_seeds():
    a = _run_with_hashseed("0")
    b = _run_with_hashseed("424242")
    assert a == b
    assert a["pieces"], "cover produced no solvable pieces"
    assert len(set(a["pieces"])) == len(a["pieces"]), \
        "distinct pieces must not collide"


def test_fingerprints_match_in_this_process():
    """The subprocess derivation equals the in-process one (same content,
    same keys — regardless of this interpreter's own hash seed)."""
    from repro.engine import ColdArtifacts
    from repro.graphs import triangulated_grid
    from repro.isomorphism import cycle_pattern
    from repro.planar import embed_geometric
    from repro.pram import Tracer

    gg = triangulated_grid(4, 4)
    emb, _ = embed_geometric(gg)
    pattern = cycle_pattern(4)
    provider = ColdArtifacts(gg.graph, emb)
    cover = provider.cover(pattern.k, pattern.diameter(), 3, Tracer("t"))
    pieces = [p for p in cover.pieces if p.graph.n >= pattern.k]
    sub = _run_with_hashseed("7")
    assert sub["pattern"] == pattern_fingerprint(pattern)
    assert sub["pieces"] == [piece_fingerprint(p) for p in pieces]
    assert sub["solves"] == [
        solve_fingerprint(p, pattern, "sequential", "packed", "decide")
        for p in pieces
    ]


def test_task_fingerprint_and_seed_are_content_derived():
    from repro.engine import ColdArtifacts
    from repro.graphs import triangulated_grid
    from repro.isomorphism import cycle_pattern
    from repro.planar import embed_geometric
    from repro.pram import Tracer

    gg = triangulated_grid(4, 4)
    emb, _ = embed_geometric(gg)
    pattern = cycle_pattern(4)
    provider = ColdArtifacts(gg.graph, emb)
    cover = provider.cover(pattern.k, pattern.diameter(), 3, Tracer("t"))
    piece = next(p for p in cover.pieces if p.graph.n >= pattern.k)
    t1 = make_piece_task(piece, pattern, "decide", "subgraph",
                         "sequential", "packed")
    t2 = make_piece_task(piece, pattern, "decide", "subgraph",
                         "sequential", "packed")
    assert t1.fingerprint == t2.fingerprint
    assert t1.seed == t2.seed
    assert t1.seed == int(t1.fingerprint[:12], 16)
    # A different output mode is a different task.
    t3 = make_piece_task(piece, pattern, "witness", "subgraph",
                         "sequential", "packed")
    assert t3.fingerprint != t1.fingerprint


def test_mutating_content_changes_fingerprint():
    from repro.graphs import Graph
    from repro.isomorphism.pattern import Pattern

    p1 = Pattern(Graph(3, np.array([[0, 1], [1, 2]])))
    p2 = Pattern(Graph(3, np.array([[0, 1], [1, 2], [2, 0]])))
    assert pattern_fingerprint(p1) != pattern_fingerprint(p2)
