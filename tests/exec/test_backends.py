"""Cross-backend equality: every driver's results AND charged traces are
byte-identical under serial / threads / processes execution.

This is the tentpole invariant of the execution-backend refactor: the
worker-recorded span subtrees merge back into the parent tracer in piece
order, so ``result.cost`` and ``trace.to_dict()`` cannot depend on how the
pieces physically executed.
"""

import numpy as np
import pytest

from repro.connectivity import planar_vertex_connectivity
from repro.engine import TargetSession
from repro.exec import (
    BACKENDS,
    ProcessesBackend,
    SerialBackend,
    ThreadsBackend,
    backend_scope,
    resolve_backend,
)
from repro.graphs import Graph, triangulated_grid
from repro.isomorphism import (
    count_occurrences_exact,
    cycle_pattern,
    decide_subgraph_isomorphism,
    list_occurrences,
    triangle,
)
from repro.isomorphism.disconnected import decide_disconnected
from repro.isomorphism.pattern import Pattern
from repro.planar import embed_geometric
from repro.separating.driver import decide_separating_isomorphism

NONSERIAL = ("threads", "processes")


def _target(rows=5, cols=5):
    gg = triangulated_grid(rows, cols)
    emb, _ = embed_geometric(gg)
    return gg.graph, emb


def _trace(result):
    return result.trace.to_dict() if result.trace is not None else None


GRAPH, EMB = _target()


@pytest.mark.parametrize("backend", NONSERIAL)
def test_decide_matches_serial(backend):
    pat = cycle_pattern(4)
    base = decide_subgraph_isomorphism(
        GRAPH, EMB, pat, seed=3, rounds=2, want_witness=True
    )
    other = decide_subgraph_isomorphism(
        GRAPH, EMB, pat, seed=3, rounds=2, want_witness=True,
        backend=backend,
    )
    assert other.found == base.found
    assert other.witness == base.witness
    assert other.cost == base.cost
    assert other.rounds_used == base.rounds_used
    assert other.pieces_examined == base.pieces_examined
    assert _trace(other) == _trace(base)


@pytest.mark.parametrize("backend", NONSERIAL)
def test_listing_matches_serial(backend):
    pat = triangle()
    base = list_occurrences(GRAPH, EMB, pat, seed=5, max_iterations=3)
    other = list_occurrences(
        GRAPH, EMB, pat, seed=5, max_iterations=3, backend=backend
    )
    assert other.witnesses == base.witnesses
    assert other.iterations == base.iterations
    assert other.cost == base.cost
    assert _trace(other) == _trace(base)


@pytest.mark.parametrize("backend", NONSERIAL)
def test_exact_count_matches_serial(backend):
    pat = cycle_pattern(4)
    base = count_occurrences_exact(GRAPH, EMB, pat)
    other = count_occurrences_exact(GRAPH, EMB, pat, backend=backend)
    assert other.isomorphisms == base.isomorphisms
    assert other.windows_examined == base.windows_examined
    assert other.cost == base.cost
    assert _trace(other) == _trace(base)


@pytest.mark.parametrize("backend", NONSERIAL)
def test_separating_matches_serial(backend):
    marked = np.zeros(GRAPH.n, dtype=bool)
    marked[0] = True
    marked[GRAPH.n - 1] = True
    pat = cycle_pattern(4)
    base = decide_separating_isomorphism(
        GRAPH, EMB, marked, pat, seed=7, rounds=2, want_witness=True
    )
    other = decide_separating_isomorphism(
        GRAPH, EMB, marked, pat, seed=7, rounds=2, want_witness=True,
        backend=backend,
    )
    assert other.found == base.found
    assert other.witness == base.witness
    assert other.cost == base.cost
    assert _trace(other) == _trace(base)


@pytest.mark.parametrize("backend", NONSERIAL)
def test_vertex_connectivity_matches_serial(backend):
    graph, emb = _target(4, 4)
    base = planar_vertex_connectivity(
        graph, emb, seed=5, rounds=2, want_certificate=True
    )
    other = planar_vertex_connectivity(
        graph, emb, seed=5, rounds=2, want_certificate=True,
        backend=backend,
    )
    assert other.connectivity == base.connectivity
    assert other.certificate_cut == base.certificate_cut
    assert other.cost == base.cost
    assert _trace(other) == _trace(base)


@pytest.mark.parametrize("backend", NONSERIAL)
def test_disconnected_matches_serial(backend):
    pat = Pattern(Graph(4, np.array([[0, 1], [2, 3]])))
    base = decide_disconnected(
        GRAPH, EMB, pat, seed=9, colorings=4, want_witness=True
    )
    other = decide_disconnected(
        GRAPH, EMB, pat, seed=9, colorings=4, want_witness=True,
        backend=backend,
    )
    assert other.found == base.found
    assert other.witness == base.witness
    assert other.colorings_used == base.colorings_used
    assert other.cost == base.cost


@pytest.mark.parametrize("backend", NONSERIAL)
def test_session_caching_matches_serial(backend):
    """Warm piece-dp cache hits replay identically under every backend —
    including the session's hit/miss counters."""
    pat = cycle_pattern(4)

    def run(bk):
        graph, emb = _target()
        session = TargetSession(graph, emb)
        first = session.decide(pat, seed=3, rounds=2, want_witness=True,
                               backend=bk)
        second = session.decide(pat, seed=3, rounds=2, want_witness=True,
                                backend=bk)
        return first, second, session.stats.as_dict()

    b1, b2, bstats = run("serial")
    o1, o2, ostats = run(backend)
    assert (o1.found, o1.witness, o1.cost) == (b1.found, b1.witness, b1.cost)
    assert (o2.found, o2.witness, o2.cost) == (b2.found, b2.witness, b2.cost)
    assert _trace(o1) == _trace(b1)
    assert _trace(o2) == _trace(b2)
    assert ostats == bstats
    assert o2.amortized


def test_pickle_transport_matches_shm():
    pat = cycle_pattern(4)
    base = decide_subgraph_isomorphism(GRAPH, EMB, pat, seed=3, rounds=2)
    with ProcessesBackend(max_workers=2, transport="pickle") as bk:
        other = decide_subgraph_isomorphism(
            GRAPH, EMB, pat, seed=3, rounds=2, backend=bk
        )
    assert other.cost == base.cost
    assert _trace(other) == _trace(base)


def test_resolve_backend_specs():
    assert isinstance(resolve_backend(None), SerialBackend)
    assert isinstance(resolve_backend("serial"), SerialBackend)
    with resolve_backend("threads", max_workers=2) as bk:
        assert isinstance(bk, ThreadsBackend)
        assert bk.max_workers == 2
    inst = SerialBackend()
    assert resolve_backend(inst) is inst
    with pytest.raises(ValueError):
        resolve_backend(inst, max_workers=4)
    with pytest.raises(ValueError):
        resolve_backend("gpu")
    assert BACKENDS == ("serial", "threads", "processes")


def test_backend_scope_ownership():
    """Instances passed in stay open; string specs are closed on exit."""
    inst = ThreadsBackend(max_workers=1)
    with backend_scope(inst) as bk:
        assert bk is inst
    # Still usable after the scope (the scope did not close it).
    pat = triangle()
    r = decide_subgraph_isomorphism(
        GRAPH, EMB, pat, seed=1, rounds=1, backend=inst
    )
    assert r.cost.work > 0
    inst.close()


def test_backend_stats_populated():
    pat = cycle_pattern(4)
    with ThreadsBackend(max_workers=2) as bk:
        decide_subgraph_isomorphism(
            GRAPH, EMB, pat, seed=3, rounds=2, backend=bk
        )
        stats = bk.stats.as_dict()
    assert stats["tasks"] > 0
    assert stats["bytes_shipped"] > 0
    assert stats["task_wall_s"] > 0.0
